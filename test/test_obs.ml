(* Telemetry subsystem tests: counter/gauge semantics, span nesting,
   session reports, the trie-cache hit/miss lifecycle across repeated
   engine queries, and JSON / Chrome-trace round-trips through the
   in-repo parser. *)

module L = Levelheaded
module Obs = Lh_obs.Obs
module Report = Lh_obs.Report
module Json = Lh_obs.Json
module Hist = Lh_obs.Hist
module Baseline = Lh_obs.Baseline
module Fault = Lh_fault.Fault
module Table = Lh_storage.Table
module Dtype = Lh_storage.Dtype

let cval name (r : Report.t) = Option.value (List.assoc_opt name r.Report.counters) ~default:0

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- counters and gauges ---- *)

let test_counter_disabled_noop () =
  let c = Obs.counter "test.disabled" in
  Obs.set_enabled false;
  let before = Obs.value c in
  Obs.incr c;
  Obs.add c 10;
  Alcotest.(check int) "no-op when disabled" before (Obs.value c)

let test_counter_monotone () =
  let c = Obs.counter "test.monotone" in
  Obs.with_enabled true (fun () ->
      let v0 = Obs.value c in
      Obs.incr c;
      Alcotest.(check int) "incr" (v0 + 1) (Obs.value c);
      Obs.add c 4;
      Alcotest.(check int) "add" (v0 + 5) (Obs.value c))

let test_counter_idempotent_register () =
  let a = Obs.counter "test.same" and b = Obs.counter "test.same" in
  Obs.with_enabled true (fun () ->
      let v0 = Obs.value a in
      Obs.incr b;
      Alcotest.(check int) "one cell" (v0 + 1) (Obs.value a))

let test_gauge_set_max () =
  let g = Obs.gauge "test.gauge" in
  Obs.with_enabled true (fun () ->
      Obs.set g 7;
      Obs.set_max g 3;
      Alcotest.(check int) "set_max keeps larger" 7 (Obs.value g);
      Obs.set_max g 11;
      Alcotest.(check int) "set_max raises" 11 (Obs.value g));
  Alcotest.(check bool) "is_gauge" true (Obs.is_gauge "test.gauge");
  Alcotest.(check bool) "counter is not" false (Obs.is_gauge "test.monotone")

let test_diff_semantics () =
  let c = Obs.counter "test.diffc" and g = Obs.gauge "test.diffg" in
  Obs.with_enabled true (fun () ->
      Obs.add c 2;
      Obs.set g 5;
      let before = Obs.snapshot () in
      Obs.add c 3;
      Obs.set g 4;
      let after = Obs.snapshot () in
      let d = Obs.diff ~before ~after in
      Alcotest.(check int) "counter delta" 3 (List.assoc "test.diffc" d);
      Alcotest.(check int) "gauge end value" 4 (List.assoc "test.diffg" d))

let test_with_enabled_restores () =
  Obs.set_enabled false;
  (try Obs.with_enabled true (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" false (Obs.is_enabled ())

(* ---- spans ---- *)

let test_span_nesting () =
  Obs.with_enabled true (fun () ->
      Obs.clear_spans ();
      Obs.span "a" (fun () ->
          Obs.span ~args:[ ("k", "v") ] "b" (fun () -> ());
          Obs.span "c" (fun () -> ()));
      let ss = Obs.spans () in
      Alcotest.(check (list string)) "start order" [ "a"; "b"; "c" ]
        (List.map (fun s -> s.Obs.sname) ss);
      Alcotest.(check (list int)) "depths" [ 0; 1; 1 ] (List.map (fun s -> s.Obs.sdepth) ss);
      let a = List.nth ss 0 and b = List.nth ss 1 in
      Alcotest.(check bool) "b inside a" true
        (b.Obs.sstart >= a.Obs.sstart && b.Obs.sdur <= a.Obs.sdur);
      Alcotest.(check (list (pair string string))) "args" [ ("k", "v") ] b.Obs.sargs)

let test_span_exception_safe () =
  Obs.with_enabled true (fun () ->
      Obs.clear_spans ();
      (try Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> failwith "boom"))
       with Failure _ -> ());
      let ss = Obs.spans () in
      Alcotest.(check (list string)) "both recorded" [ "outer"; "inner" ]
        (List.map (fun s -> s.Obs.sname) ss);
      (* depth state must be restored: a fresh root span is depth 0 again *)
      Obs.span "again" (fun () -> ());
      let last = List.nth (Obs.spans ()) 2 in
      Alcotest.(check int) "depth restored" 0 last.Obs.sdepth)

let test_span_disabled_passthrough () =
  Obs.set_enabled false;
  Obs.clear_spans ();
  Alcotest.(check int) "result" 41 (Obs.span "nope" (fun () -> 41));
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.spans ()))

let test_span_error_tag () =
  Obs.with_enabled true (fun () ->
      Obs.clear_spans ();
      (try Obs.span "failing" (fun () -> failwith "boom") with Failure _ -> ());
      Obs.span "clean" (fun () -> ());
      match Obs.spans () with
      | [ bad; good ] -> (
          Alcotest.(check bool) "clean span untagged" true
            (List.assoc_opt "error" good.Obs.sargs = None);
          match List.assoc_opt "error" bad.Obs.sargs with
          | Some msg ->
              Alcotest.(check bool) "tag names the exception" true (contains msg "boom")
          | None -> Alcotest.fail "exceptional exit not tagged with an error arg")
      | ss -> Alcotest.failf "expected two spans, got %d" (List.length ss))

(* ---- histograms ---- *)

let test_hist_bucket_boundaries () =
  List.iter
    (fun (ns, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of_ns %d" ns) b (Hist.bucket_of_ns ns))
    [
      (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3);
      (1023, 9); (1024, 10); (max_int, Hist.nbuckets - 1);
    ];
  (* every bucket's bounds land back in that bucket *)
  for i = 1 to Hist.nbuckets - 2 do
    let lo, hi = Hist.bucket_bounds_ns i in
    Alcotest.(check int) (Printf.sprintf "lo of bucket %d" i) i (Hist.bucket_of_ns lo);
    Alcotest.(check int) (Printf.sprintf "hi-1 of bucket %d" i) i (Hist.bucket_of_ns (hi - 1))
  done

let test_hist_observe_gating () =
  let h = Hist.histogram "test.hist.gating" in
  Obs.set_enabled false;
  Hist.observe h 0.001;
  Alcotest.(check int) "disabled observe is a no-op" 0 (Hist.count (Hist.snapshot h));
  Hist.observe_always h 0.001;
  Alcotest.(check int) "observe_always records" 1 (Hist.count (Hist.snapshot h));
  Obs.with_enabled true (fun () -> Hist.observe h 0.002);
  Alcotest.(check int) "enabled observe records" 2 (Hist.count (Hist.snapshot h));
  (* negative / NaN inputs count as 0 ns (bucket 0) rather than raising *)
  Hist.observe_always h (-1.0);
  Hist.observe_always h Float.nan;
  Alcotest.(check int) "negative+nan in bucket 0" 2 ((Hist.snapshot h).Hist.sbuckets.(0))

(* The disabled-cost contract: a disabled observe is one atomic load and
   a branch — in particular it must not allocate (no closure, no boxed
   float, no snapshot). Minor-heap words are an observable proxy. *)
let test_hist_disabled_cost () =
  let h = Hist.histogram "test.hist.cost" in
  Obs.set_enabled false;
  for _ = 1 to 100 do Hist.observe h 1e-3 done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do Hist.observe h 1e-3 done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "10k disabled observes allocate ~nothing (%.0f words)" dw)
    true (dw < 256.0)

let snap buckets ~sum ~max_ns =
  let sb = Array.make Hist.nbuckets 0 in
  List.iter (fun (i, c) -> sb.(i) <- c) buckets;
  { Hist.sbuckets = sb; ssum_ns = sum; smax_ns = max_ns }

let test_hist_percentile_interpolation () =
  let check name want got = Alcotest.(check (float 1e-15)) name want got in
  Alcotest.(check (float 0.0)) "empty snapshot" 0.0 (Hist.percentile Hist.empty 0.5);
  (* 4 observations in bucket 4 = [16,32) ns with a known max of 30 ns:
     interpolation is linear between lo and the clamped hi *)
  let s = snap [ (4, 4) ] ~sum:80 ~max_ns:30 in
  check "p50 interpolates" 23e-9 (Hist.percentile s 0.5) (* 16 + (30-16)*(2/4) *);
  check "p100 is the max" 30e-9 (Hist.percentile s 1.0);
  check "p0 clamps to rank 1" (19.5e-9) (Hist.percentile s 0.0) (* 16 + 14*(1/4) *);
  (* two occupied buckets: the rank walk skips the first *)
  let s2 = snap [ (4, 2); (6, 2) ] ~sum:240 ~max_ns:100 in
  check "p50 stays in the low bucket" 32e-9 (Hist.percentile s2 0.5);
  check "p90 lands in the top bucket" 100e-9 (Hist.percentile s2 0.9);
  let st = Hist.stats s2 in
  Alcotest.(check bool) "percentiles monotone" true
    (st.Hist.st_p50 <= st.Hist.st_p90
    && st.Hist.st_p90 <= st.Hist.st_p99
    && st.Hist.st_p99 <= st.Hist.st_max_s);
  Alcotest.(check int) "stats count" 4 st.Hist.st_count;
  check "stats mean" 60e-9 st.Hist.st_mean_s

let test_hist_diff_merge () =
  let h = Hist.make () in
  Hist.observe_always h 1e-6;
  let before = Hist.snapshot h in
  Hist.observe_always h 4e-6;
  Hist.observe_always h 1e-3;
  let after = Hist.snapshot h in
  let d = Hist.diff ~before ~after in
  Alcotest.(check int) "diff counts the interval" 2 (Hist.count d);
  Alcotest.(check int) "diff sum is the interval sum" (after.Hist.ssum_ns - before.Hist.ssum_ns)
    d.Hist.ssum_ns;
  Alcotest.(check bool) "diff max bounded by lifetime max" true
    (d.Hist.smax_ns <= after.Hist.smax_ns);
  (* merging the before-snapshot with the interval recovers the after-
     snapshot exactly (counts and sums; max is an estimate) *)
  let m = Hist.merge before d in
  Alcotest.(check int) "merge count" (Hist.count after) (Hist.count m);
  Alcotest.(check int) "merge sum" after.Hist.ssum_ns m.Hist.ssum_ns;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "merge bucket %d" i) c m.Hist.sbuckets.(i))
    after.Hist.sbuckets;
  (* stats_json round-trips through the in-repo parser *)
  let j = Hist.stats_json after in
  Alcotest.(check bool) "stats_json round-trip" true (Json.parse (Json.to_string j) = j)

(* ---- session reports ---- *)

let test_session_deltas () =
  let c = Obs.counter "test.session" in
  let session () = Report.with_session (fun () -> Obs.incr c; Obs.add c 4) in
  let (), r1 = session () in
  let (), r2 = session () in
  Alcotest.(check int) "first delta" 5 (cval "test.session" r1);
  Alcotest.(check int) "second delta (not cumulative)" 5 (cval "test.session" r2);
  Alcotest.(check bool) "total positive" true (r1.Report.total_s >= 0.0)

(* ---- engine integration: trie cache lifecycle + stale-cache fix ---- *)

let matrix_rows vals = List.map (fun (i, j, v) -> [ Dtype.VInt i; Dtype.VInt j; Dtype.VFloat v ]) vals

let engine_with vals =
  let e = L.Engine.create () in
  ignore
    (L.Engine.register_rows e ~name:"m" ~schema:Lh_datagen.Matrices.matrix_schema
       (matrix_rows vals));
  e

let smm =
  "select m1.row, m2.col, sum(m1.v * m2.v) as v from m m1, m m2 where m1.col = m2.row group by \
   m1.row, m2.col"

let test_trie_cache_hit_miss () =
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0); (5, 0, 1.0) ] in
  let run () = ignore (L.Engine.query e smm) in
  let (), cold = Report.with_session run in
  let (), hot = Report.with_session run in
  Alcotest.(check bool) "cold run misses" true (cval "trie_cache.miss" cold >= 1);
  Alcotest.(check bool) "cold run builds tries" true (cval "trie.built" cold >= 1);
  Alcotest.(check bool) "hot run hits" true (cval "trie_cache.hit" hot >= 1);
  Alcotest.(check int) "hot run never misses" 0 (cval "trie_cache.miss" hot);
  (* re-registering the table must invalidate: back to a cold run *)
  ignore
    (L.Engine.register_rows e ~name:"m" ~schema:Lh_datagen.Matrices.matrix_schema
       (matrix_rows [ (0, 1, 2.0); (1, 2, 3.0) ]));
  let (), recold = Report.with_session run in
  Alcotest.(check bool) "miss again after register_rows" true (cval "trie_cache.miss" recold >= 1)

let test_register_rows_invalidates () =
  (* the stale-cache regression: register_rows used to leave the trie
     cache intact, so a hot query kept answering from the old table *)
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0) ] in
  Helpers.check_rows_equal "initial join"
    [ [ Dtype.VInt 0; Dtype.VInt 2; Dtype.VFloat 6.0 ] ]
    (Table.to_rows (L.Engine.query e smm));
  ignore
    (L.Engine.register_rows e ~name:"m" ~schema:Lh_datagen.Matrices.matrix_schema
       (matrix_rows [ (5, 6, 1.0) ]));
  Alcotest.(check int) "replacement visible" 0 (L.Engine.query e smm).Table.nrows

let test_analyze_phases_and_rows () =
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0); (2, 0, 4.0) ] in
  let result, ex, r = L.Engine.query_analyze e smm in
  Alcotest.(check bool) "wcoj path" true (ex.L.Engine.epath = L.Engine.Wcoj_path);
  Alcotest.(check int) "rows.emitted matches result" result.Table.nrows (cval "rows.emitted" r);
  let phases = Report.phases r in
  let names = List.map fst phases in
  Alcotest.(check bool) "has parse phase" true (List.mem "parse" names);
  Alcotest.(check bool) "has finalize phase" true (List.mem "finalize" names);
  let accounted = List.fold_left (fun a (_, d) -> a +. d) 0.0 phases in
  Alcotest.(check bool) "phases within total" true (accounted <= r.Report.total_s *. 1.05);
  Alcotest.(check bool) "phases non-trivial" true (accounted > 0.0);
  (* the text report renders without raising and mentions the cache *)
  let text = Report.to_text r in
  Alcotest.(check bool) "text has phase table" true
    (String.length text > 0 && List.mem "parse" names)

(* ---- JSON round-trips ---- *)

let test_json_parse_basics () =
  Alcotest.(check bool) "scalars" true
    (Json.parse "[1, -2.5, \"a\\nb\", true, false, null]"
    = Json.List
        [ Json.Int 1; Json.Float (-2.5); Json.String "a\nb"; Json.Bool true; Json.Bool false; Json.Null ]);
  Alcotest.(check bool) "nested object" true
    (Json.parse "{\"k\": {\"n\": -3}}" = Json.Obj [ ("k", Json.Obj [ ("n", Json.Int (-3)) ]) ]);
  Alcotest.(check bool) "unicode escape" true (Json.parse "\"\\u0041\"" = Json.String "A")

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected Parse_error on %S" s)
    [ "{"; "1 2"; "[1,]"; "nul"; "\"unterminated" ]

let test_json_roundtrip_tree () =
  let t =
    Json.Obj
      [
        ("i", Json.Int 42);
        ("f", Json.Float 0.1);
        ("whole", Json.Float 2.0);
        ("s", Json.String "quote\" slash\\ newline\n tab\t π");
        ("l", Json.List [ Json.Bool true; Json.Null; Json.Int (-7) ]);
      ]
  in
  Alcotest.(check bool) "tree survives print+parse" true (Json.parse (Json.to_string t) = t)

let test_report_sinks_roundtrip () =
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0) ] in
  let _, _, r = L.Engine.query_analyze e smm in
  let metrics = Report.metrics_json r in
  let reparsed = Json.parse (Json.to_string metrics) in
  Alcotest.(check bool) "metrics survive round-trip" true (reparsed = metrics);
  (match Json.member "total_seconds" reparsed with
  | Some v ->
      Alcotest.(check (float 1e-9)) "total preserved" r.Report.total_s
        (Option.get (Json.to_float v))
  | None -> Alcotest.fail "missing total_seconds");
  let trace = Report.chrome_trace r in
  let tre = Json.parse (Json.to_string trace) in
  Alcotest.(check bool) "trace survives round-trip" true (tre = trace);
  match Json.member "traceEvents" tre with
  | Some (Json.List evs) ->
      Alcotest.(check bool) "has events" true (List.length evs > 0);
      List.iter
        (fun ev ->
          match Json.member "ph" ev with
          | Some (Json.String ("X" | "C" | "M")) -> ()
          | _ -> Alcotest.fail "unexpected event phase")
        evs
  | _ -> Alcotest.fail "missing traceEvents"

(* Property: any finite JSON tree survives print + parse. NaN/infinite
   floats are excluded by construction — the emitter deliberately prints
   them as null. *)
let gen_json =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let scalar =
             oneof
               [
                 return Json.Null;
                 map (fun b -> Json.Bool b) bool;
                 map (fun i -> Json.Int i) (int_range (-1_000_000_000) 1_000_000_000);
                 map
                   (fun f -> Json.Float (if Float.is_finite f then f else 1.5))
                   float;
                 map (fun s -> Json.String s) (small_string ~gen:printable);
               ]
           in
           if n = 0 then scalar
           else
             frequency
               [
                 (3, scalar);
                 (1, map (fun xs -> Json.List xs) (list_size (int_bound 4) (self (n / 2))));
                 ( 1,
                   map
                     (fun kvs -> Json.Obj kvs)
                     (list_size (int_bound 4)
                        (pair (small_string ~gen:printable) (self (n / 2)))) );
               ]))

let qcheck_json_roundtrip =
  Helpers.qtest ~count:400 "json print/parse round-trip" gen_json (fun t ->
      Json.parse (Json.to_string t) = t)

(* ---- baseline comparison (the bench --compare gate) ---- *)

let bcell key seconds =
  { Baseline.key; outcome = Printf.sprintf "%.4fs" seconds; seconds = Some seconds }

let test_baseline_self_compare () =
  let cells =
    [ bcell "a" 0.1; bcell "b" 0.01; { Baseline.key = "c"; outcome = "oom"; seconds = None } ]
  in
  let v = Baseline.compare_runs ~baseline:cells ~current:cells () in
  Alcotest.(check bool) "ok" true (Baseline.ok v);
  Alcotest.(check int) "no regressions" 0 (List.length v.Baseline.regressions);
  Alcotest.(check int) "no warnings" 0 (List.length v.Baseline.warnings);
  Alcotest.(check bool) "text verdict" true (contains (Baseline.to_text v) "baseline compare ok")

let test_baseline_regression_detected () =
  let v =
    Baseline.compare_runs ~baseline:[ bcell "a" 0.1; bcell "b" 0.1 ]
      ~current:[ bcell "a" 0.4; bcell "b" 0.1 ] ()
  in
  Alcotest.(check bool) "gate fires" false (Baseline.ok v);
  Alcotest.(check int) "exactly one regression" 1 (List.length v.Baseline.regressions);
  Alcotest.(check bool) "text flags it" true (contains (Baseline.to_text v) "REGRESSION: a");
  (* an improvement is a note, never a regression *)
  let v2 = Baseline.compare_runs ~baseline:[ bcell "a" 0.4 ] ~current:[ bcell "a" 0.1 ] () in
  Alcotest.(check bool) "improvement ok" true (Baseline.ok v2);
  Alcotest.(check int) "improvement noted" 1 (List.length v2.Baseline.notes)

let test_baseline_noise_floor () =
  (* 4x slower but only 0.3 ms absolute: below the min_seconds floor *)
  let base = [ bcell "a" 0.0001 ] and cur = [ bcell "a" 0.0004 ] in
  let v = Baseline.compare_runs ~baseline:base ~current:cur () in
  Alcotest.(check bool) "microsecond cells don't flap" true (Baseline.ok v);
  let v2 = Baseline.compare_runs ~min_seconds:0.0 ~baseline:base ~current:cur () in
  Alcotest.(check bool) "floor removed: regression" false (Baseline.ok v2);
  (* within relative tolerance never regresses, whatever the floor *)
  let v3 =
    Baseline.compare_runs ~min_seconds:0.0 ~baseline:[ bcell "a" 0.1 ]
      ~current:[ bcell "a" 0.14 ] ()
  in
  Alcotest.(check bool) "within tolerance" true (Baseline.ok v3)

let test_baseline_outcome_flip_and_cell_sets () =
  let base = [ bcell "a" 0.1; bcell "gone" 0.1 ] in
  let cur = [ { Baseline.key = "a"; outcome = "oom"; seconds = None }; bcell "new" 0.1 ] in
  let v = Baseline.compare_runs ~baseline:base ~current:cur () in
  Alcotest.(check bool) "success -> oom regresses" false (Baseline.ok v);
  Alcotest.(check int) "missing + added cells warn" 2 (List.length v.Baseline.warnings)

let test_baseline_cells_of_json () =
  let record sql secs =
    Json.Obj
      [
        ("experiment", Json.String "e");
        ("system", Json.String "s");
        ("sql", Json.String sql);
        ("outcome", Json.String "1.0ms");
        ("seconds", Json.Float secs);
      ]
  in
  (* the same SQL at two scale factors must yield two distinct cells *)
  match Baseline.cells_of_json (Json.List [ record "q" 0.1; record "q" 0.2 ]) with
  | [ c1; c2 ] -> (
      Alcotest.(check bool) "occurrence keys distinct" true (c1.Baseline.key <> c2.Baseline.key);
      Alcotest.(check (option (float 1e-12))) "seconds parsed" (Some 0.1) c1.Baseline.seconds;
      match Baseline.scale 3.0 [ c1 ] with
      | [ s ] ->
          Alcotest.(check (option (float 1e-12)))
            "scale multiplies seconds" (Some 0.3) s.Baseline.seconds
      | cells -> Alcotest.failf "scale changed shape (%d cells)" (List.length cells))
  | cells -> Alcotest.failf "expected 2 cells, got %d" (List.length cells)

(* ---- per-query profiles ---- *)

let profile_exn () = Alcotest.fail "no profile record after the query"

let test_profile_ok_outcome () =
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0); (2, 0, 4.0) ] in
  Obs.with_enabled true (fun () ->
      let tbl = L.Engine.query e smm in
      match L.Engine.last_profile e with
      | None -> profile_exn ()
      | Some p ->
          Alcotest.(check bool) "outcome ok" true (p.L.Profile.p_outcome = L.Profile.Ok_result);
          Alcotest.(check string) "path" "wcoj" p.L.Profile.p_path;
          Alcotest.(check bool) "plan summarizes the GHD" true
            (contains p.L.Profile.p_plan "fhw");
          Alcotest.(check int) "rows_out" tbl.Table.nrows p.L.Profile.p_rows_out;
          Alcotest.(check bool) "rows_in counts base tables" true (p.L.Profile.p_rows_in >= 3);
          Alcotest.(check bool) "total > 0" true (p.L.Profile.p_total_s > 0.0);
          Alcotest.(check bool) "phases nonempty" true (p.L.Profile.p_phases <> []);
          Alcotest.(check bool) "counters nonempty" true (p.L.Profile.p_counters <> []);
          Alcotest.(check bool) "normalized sql" true (String.length p.L.Profile.p_sql > 0))

let test_profile_error_outcome () =
  let e = engine_with [ (0, 1, 2.0) ] in
  Obs.with_enabled true (fun () ->
      (match L.Engine.query_result e "select x from nosuch" with
      | Ok _ -> Alcotest.fail "expected a typed error"
      | Error _ -> ());
      match L.Engine.last_profile e with
      | Some { L.Profile.p_outcome = L.Profile.Typed_error _; p_rows_out; _ } ->
          Alcotest.(check int) "no rows on failure" 0 p_rows_out
      | Some _ -> Alcotest.fail "wrong outcome tag"
      | None -> profile_exn ())

let test_profile_fault_outcome () =
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0) ] in
  Obs.with_enabled true (fun () ->
      Fault.disarm_all ();
      Fault.arm ~kind:Fault.Generic ~trigger:(Fault.Nth 1) "engine.query";
      let res = L.Engine.query_result e smm in
      Fault.disarm_all ();
      (match res with
      | Error (L.Engine.Error.Fault_injected _) -> ()
      | _ -> Alcotest.fail "expected Fault_injected");
      match L.Engine.last_profile e with
      | Some { L.Profile.p_outcome = L.Profile.Injected_fault site; _ } ->
          Alcotest.(check string) "site recorded" "engine.query" site
      | Some _ -> Alcotest.fail "wrong outcome tag"
      | None -> profile_exn ())

let test_profile_budget_outcome () =
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0); (2, 0, 4.0) ] in
  let saved = L.Engine.config e in
  let tiny = Lh_util.Budget.create ~max_seconds:1e-9 () in
  (* a grand-total aggregate has no join keys, so it takes the scan path,
     which budget-checks from row 0 — a nanosecond budget trips
     deterministically even on a 3-row table *)
  let scan_sql = "select sum(m.v) as s from m" in
  Obs.with_enabled true (fun () ->
      L.Engine.set_config e { saved with L.Config.budget = tiny };
      let res = L.Engine.query_result e scan_sql in
      L.Engine.set_config e saved;
      (match res with
      | Error L.Engine.Error.Budget_exceeded -> ()
      | Ok _ -> Alcotest.fail "expected a budget overrun"
      | Error e -> Alcotest.failf "wrong error: %s" (L.Engine.Error.to_string e));
      match L.Engine.last_profile e with
      | Some { L.Profile.p_outcome = L.Profile.Budget_overrun; _ } -> ()
      | Some _ -> Alcotest.fail "wrong outcome tag"
      | None -> profile_exn ())

let test_profile_disabled () =
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0) ] in
  Obs.set_enabled false;
  ignore (L.Engine.query e smm);
  Alcotest.(check bool) "no profile when disabled" true (L.Engine.last_profile e = None)

let test_profile_sink_threshold_and_jsonl () =
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0) ] in
  let lines = ref [] in
  L.Engine.set_profile_sink e (Some (fun p -> lines := L.Profile.to_string p :: !lines));
  let saved = L.Engine.config e in
  Obs.with_enabled true (fun () ->
      L.Engine.set_config e { saved with L.Config.slow_log_ms = 1e9 };
      ignore (L.Engine.query e smm);
      Alcotest.(check int) "below threshold: no line" 0 (List.length !lines);
      L.Engine.set_config e { saved with L.Config.slow_log_ms = 0.0 };
      ignore (L.Engine.query e smm);
      Alcotest.(check int) "threshold 0 logs every query" 1 (List.length !lines));
  L.Engine.set_config e saved;
  L.Engine.set_profile_sink e None;
  match !lines with
  | [ line ] -> (
      (* the slow-log line is the documented JSONL object *)
      let j = Json.parse line in
      List.iter
        (fun k ->
          if Json.member k j = None then Alcotest.failf "slow-log line missing %S" k)
        [
          "sql"; "plan"; "path"; "plan_cache"; "epoch"; "rows_in"; "rows_out"; "domains";
          "total_seconds"; "phases"; "counters"; "gc_major_words"; "outcome";
        ];
      match Json.member "outcome" j with
      | Some (Json.String "ok") -> ()
      | _ -> Alcotest.fail "outcome member should be \"ok\"")
  | ls -> Alcotest.failf "expected exactly one line, got %d" (List.length ls)

let () =
  Alcotest.run "lh_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "disabled no-op" `Quick test_counter_disabled_noop;
          Alcotest.test_case "monotone incr/add" `Quick test_counter_monotone;
          Alcotest.test_case "idempotent register" `Quick test_counter_idempotent_register;
          Alcotest.test_case "gauge set/set_max" `Quick test_gauge_set_max;
          Alcotest.test_case "diff semantics" `Quick test_diff_semantics;
          Alcotest.test_case "with_enabled restores" `Quick test_with_enabled_restores;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting + ordering" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "disabled passthrough" `Quick test_span_disabled_passthrough;
          Alcotest.test_case "error tag on exceptional exit" `Quick test_span_error_tag;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_hist_bucket_boundaries;
          Alcotest.test_case "observe gating" `Quick test_hist_observe_gating;
          Alcotest.test_case "disabled-cost contract" `Quick test_hist_disabled_cost;
          Alcotest.test_case "percentile interpolation" `Quick test_hist_percentile_interpolation;
          Alcotest.test_case "diff + merge" `Quick test_hist_diff_merge;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "self-compare is clean" `Quick test_baseline_self_compare;
          Alcotest.test_case "regression detected" `Quick test_baseline_regression_detected;
          Alcotest.test_case "noise floor" `Quick test_baseline_noise_floor;
          Alcotest.test_case "outcome flips + cell sets" `Quick
            test_baseline_outcome_flip_and_cell_sets;
          Alcotest.test_case "cells_of_json occurrence keys" `Quick test_baseline_cells_of_json;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "ok outcome" `Quick test_profile_ok_outcome;
          Alcotest.test_case "typed-error outcome" `Quick test_profile_error_outcome;
          Alcotest.test_case "injected-fault outcome" `Quick test_profile_fault_outcome;
          Alcotest.test_case "budget outcome" `Quick test_profile_budget_outcome;
          Alcotest.test_case "disabled: no profile" `Quick test_profile_disabled;
          Alcotest.test_case "sink threshold + JSONL shape" `Quick
            test_profile_sink_threshold_and_jsonl;
        ] );
      ( "sessions",
        [ Alcotest.test_case "counter deltas per session" `Quick test_session_deltas ] );
      ( "engine",
        [
          Alcotest.test_case "trie cache hit/miss lifecycle" `Quick test_trie_cache_hit_miss;
          Alcotest.test_case "register_rows invalidates caches" `Quick
            test_register_rows_invalidates;
          Alcotest.test_case "analyze phases + rows.emitted" `Quick test_analyze_phases_and_rows;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "tree round-trip" `Quick test_json_roundtrip_tree;
          Alcotest.test_case "report sinks round-trip" `Quick test_report_sinks_roundtrip;
          qcheck_json_roundtrip;
        ] );
    ]
