(* Shared helpers for the test suites. *)

module Dtype = Lh_storage.Dtype
module Rows = Lh_qgen.Rows

(* Property seed: LH_SEED pins the qcheck generator stream (test/dune
   declares the env-var dependency so changing it invalidates cached
   runs); without it each run draws a fresh seed, printed on failure so
   any run can be replayed exactly. *)
let qcheck_seed =
  lazy
    (match Sys.getenv_opt "LH_SEED" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> n
        | None -> failwith (Printf.sprintf "LH_SEED must be an integer (got %S)" s))
    | None ->
        Random.self_init ();
        Random.int 0x3FFFFFFF)

let qtest ?(count = 200) name gen prop =
  let seed = Lazy.force qcheck_seed in
  let reported = ref false in
  let report () =
    if not !reported then begin
      reported := true;
      Printf.eprintf "\n[%s] property failed; replay with LH_SEED=%d\n%!" name seed
    end
  in
  let prop x =
    match prop x with
    | true -> true
    | false ->
        report ();
        false
    | exception e ->
        report ();
        raise e
  in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| seed |])
    (QCheck2.Test.make ~count ~name gen prop)

(* Row comparison is the one shared implementation in Lh_qgen.Rows (also
   used by the differential harness); tests keep positional semantics so
   a wrong emit order still fails. *)
let value_close = Rows.value_close
let row_to_string = Rows.row_to_string

let check_rows_equal name expect got =
  match Rows.diff_aligned ~expect ~got with
  | None -> ()
  | Some d -> Alcotest.failf "%s: %s" name d

(* A small fully-loaded engine shared by the integration tests. *)
let tpch_engine =
  lazy
    (let eng = Levelheaded.Engine.create () in
     let dict = Levelheaded.Engine.dict eng in
     let tables = Lh_datagen.Tpch.generate ~dict ~sf:0.002 () in
     List.iter (Levelheaded.Engine.register eng) tables;
     let m = Lh_datagen.Matrices.banded ~dict ~name:"spm" ~n:200 ~nnz_per_row:6 () in
     Levelheaded.Engine.register eng m.Lh_datagen.Matrices.table;
     let dm, _ = Lh_datagen.Matrices.dense ~dict ~name:"dm" ~n:16 () in
     Levelheaded.Engine.register eng dm;
     let dv, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:"dv" ~n:16 () in
     Levelheaded.Engine.register eng dv;
     let sv, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:"sv" ~n:200 () in
     Levelheaded.Engine.register eng sv;
     eng)

let lookup_in eng name = Levelheaded.Catalog.find_exn (Levelheaded.Engine.catalog eng) name

let oracle_rows eng sql =
  Lh_baseline.Oracle.query ~lookup:(lookup_in eng) (Lh_sql.Parser.parse sql)

let engine_rows eng sql = Lh_storage.Table.to_rows (Levelheaded.Engine.query eng sql)

let check_against_oracle ?name eng sql =
  let name = Option.value name ~default:sql in
  check_rows_equal name (oracle_rows eng sql) (engine_rows eng sql)

(* TPC-H benchmark queries as run in this repository (ORDER BY dropped per
   the paper; Q8/Q9 flattened since subqueries are out of scope). *)
let q1 =
  "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, sum(l_extendedprice) as \
   sum_base_price, sum(l_extendedprice*(1-l_discount)) as sum_disc_price, \
   sum(l_extendedprice*(1-l_discount)*(1+l_tax)) as sum_charge, avg(l_quantity) as avg_qty, \
   avg(l_extendedprice) as avg_price, avg(l_discount) as avg_disc, count(*) as count_order from \
   lineitem where l_shipdate <= date '1998-12-01' - interval '90' day group by l_returnflag, \
   l_linestatus"

let q3 =
  "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, o_orderdate, \
   o_shippriority from customer, orders, lineitem where c_mktsegment = 'BUILDING' and c_custkey \
   = o_custkey and l_orderkey = o_orderkey and o_orderdate < date '1995-03-15' and l_shipdate > \
   date '1995-03-15' group by l_orderkey, o_orderdate, o_shippriority"

let q5 =
  "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue from customer, orders, \
   lineitem, supplier, nation, region where c_custkey = o_custkey and l_orderkey = o_orderkey \
   and l_suppkey = s_suppkey and c_nationkey = s_nationkey and s_nationkey = n_nationkey and \
   n_regionkey = r_regionkey and r_name = 'ASIA' and o_orderdate >= date '1994-01-01' and \
   o_orderdate < date '1995-01-01' group by n_name"

let q6 =
  "select sum(l_extendedprice * l_discount) as revenue from lineitem where l_shipdate >= date \
   '1994-01-01' and l_shipdate < date '1995-01-01' and l_discount between 0.05 and 0.07 and \
   l_quantity < 24"

let q8 =
  "select extract(year from o_orderdate) as o_year, sum(case when n2.n_name = 'BRAZIL' then \
   l_extendedprice * (1 - l_discount) else 0 end) as brazil_volume, sum(l_extendedprice * (1 - \
   l_discount)) as total_volume from part, supplier, lineitem, orders, customer, nation n1, \
   nation n2, region where p_partkey = l_partkey and s_suppkey = l_suppkey and l_orderkey = \
   o_orderkey and o_custkey = c_custkey and c_nationkey = n1.n_nationkey and n1.n_regionkey = \
   r_regionkey and r_name = 'AMERICA' and s_nationkey = n2.n_nationkey and o_orderdate between \
   date '1995-01-01' and date '1996-12-31' and p_type = 'ECONOMY ANODIZED STEEL' group by \
   extract(year from o_orderdate)"

let q9 =
  "select n_name as nation, extract(year from o_orderdate) as o_year, sum(l_extendedprice * (1 \
   - l_discount) - ps_supplycost * l_quantity) as sum_profit from part, supplier, lineitem, \
   partsupp, orders, nation where s_suppkey = l_suppkey and ps_suppkey = l_suppkey and \
   ps_partkey = l_partkey and p_partkey = l_partkey and o_orderkey = l_orderkey and s_nationkey \
   = n_nationkey and p_name like '%green%' group by n_name, extract(year from o_orderdate)"

let q10 =
  "select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue, c_acctbal, \
   n_name, c_address, c_phone from customer, orders, lineitem, nation where c_custkey = \
   o_custkey and l_orderkey = o_orderkey and o_orderdate >= date '1993-10-01' and o_orderdate < \
   date '1994-01-01' and l_returnflag = 'R' and c_nationkey = n_nationkey group by c_custkey, \
   c_name, c_acctbal, c_phone, n_name, c_address"

let tpch_queries = [ ("q1", q1); ("q3", q3); ("q5", q5); ("q6", q6); ("q8", q8); ("q9", q9); ("q10", q10) ]

let smv = "select m.row, sum(m.v * x.v) as y from spm m, sv x where m.col = x.idx group by m.row"

let smm =
  "select m1.row, m2.col, sum(m1.v * m2.v) as v from spm m1, spm m2 where m1.col = m2.row group \
   by m1.row, m2.col"

let dmv = "select m.row, sum(m.v * x.v) as y from dm m, dv x where m.col = x.idx group by m.row"

let dmm =
  "select m1.row, m2.col, sum(m1.v * m2.v) as v from dm m1, dm m2 where m1.col = m2.row group \
   by m1.row, m2.col"

let la_queries = [ ("smv", smv); ("smm", smm); ("dmv", dmv); ("dmm", dmm) ]
