(* Fault-injection suite.

   Two layers: unit tests for the lib/fault registry itself (glob arming,
   LH_FAULT spec parsing, Nth/Prob trigger determinism, budget-exception
   kinds), and engine-level crash-only recovery regressions — every cache
   and long-lived structure must come through an injected fault with no
   partial state, proven by re-running the same workload on the same
   engine and demanding the clean answer. The full per-site sweep lives in
   Lh_qgen.Crashtest (smoke-tested here, run in anger by
   `lhfuzz --inject-fault` in ci.sh). *)

module Fault = Lh_fault.Fault
module Budget = Lh_util.Budget
module Pool = Lh_util.Pool
module L = Levelheaded
module Table = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype
module Dense = Lh_blas.Dense
module Csr = Lh_blas.Csr
module Rows = Lh_qgen.Rows

(* Every test leaves the process-global registry disarmed, whatever
   happens inside. *)
let with_disarm f = Fun.protect ~finally:Fault.disarm_all f

(* ---- registry unit tests ---- *)

let test_glob_match () =
  let cases =
    [
      ("pool.chunk", "pool.chunk", true);
      ("pool.*", "pool.chunk", true);
      ("pool.*", "plan_cache.fill", false);
      ("*.gemm", "dense.gemm", true);
      ("*", "anything.at.all", true);
      ("dense.gemm", "dense.gemv", false);
      ("e*e", "engine", true);
      ("*chunk*", "pool.chunk", true);
      ("", "", true);
      ("", "x", false);
    ]
  in
  List.iter
    (fun (pattern, name, want) ->
      Alcotest.(check bool)
        (Printf.sprintf "glob %S vs %S" pattern name)
        want
        (Fault.glob_match ~pattern name))
    cases

let test_parse_spec () =
  (match Fault.parse_spec "pool.*:kind=timeout:nth=3, dense.gemm:p=0.5:seed=9, engine.query:always" with
  | Ok [ s1; s2; s3 ] ->
      Alcotest.(check string) "pattern 1" "pool.*" s1.Fault.sp_pattern;
      Alcotest.(check bool) "kind 1" true (s1.Fault.sp_kind = Fault.Timeout);
      Alcotest.(check bool) "trigger 1" true (s1.Fault.sp_trigger = Fault.Nth 3);
      Alcotest.(check bool) "trigger 2" true (s2.Fault.sp_trigger = Fault.Prob (0.5, 9));
      Alcotest.(check bool) "kind 2 defaults generic" true (s2.Fault.sp_kind = Fault.Generic);
      Alcotest.(check bool) "trigger 3" true (s3.Fault.sp_trigger = Fault.Always)
  | Ok _ -> Alcotest.fail "expected exactly three specs"
  | Error m -> Alcotest.failf "parse failed: %s" m);
  let rejected text =
    match Fault.parse_spec text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to be rejected" text
  in
  rejected "x:kind=bogus";
  rejected "x:nth=0";
  rejected "x:nth=many";
  rejected "x:p=2.0";
  rejected "x:frobnicate=1";
  rejected "x:nth";
  match Fault.parse_spec "a.site:nth=2" with
  | Ok [ s ] -> Alcotest.(check bool) "minimal spec" true (s.Fault.sp_trigger = Fault.Nth 2)
  | _ -> Alcotest.fail "minimal spec should parse"

let test_nth_trigger () =
  with_disarm @@ fun () ->
  let s = Fault.site "test.nth" in
  Fault.arm ~trigger:(Fault.Nth 5) "test.nth";
  for _ = 1 to 4 do
    Fault.hit s
  done;
  (match Fault.hit s with
  | () -> Alcotest.fail "expected the 5th hit to fire"
  | exception Fault.Injected n -> Alcotest.(check string) "payload is the site name" "test.nth" n);
  (* Nth fires exactly once; later hits pass through. *)
  for _ = 1 to 20 do
    Fault.hit s
  done;
  Alcotest.(check int) "fired exactly once" 1 (Fault.fired "test.nth");
  Alcotest.(check int) "hits keep counting" 25 (Fault.hits "test.nth")

let test_prob_deterministic () =
  with_disarm @@ fun () ->
  let pattern seed =
    Fault.disarm_all ();
    Fault.arm ~trigger:(Fault.Prob (0.3, seed)) "test.prob";
    let s = Fault.site "test.prob" in
    List.init 200 (fun _ ->
        match Fault.hit s with () -> false | exception Fault.Injected _ -> true)
  in
  let p1 = pattern 1 in
  Alcotest.(check bool) "same seed, same firings" true (p1 = pattern 1);
  Alcotest.(check bool) "different seed, different firings" true (p1 <> pattern 2);
  Alcotest.(check bool) "p=0.3 fires sometimes" true (List.mem true p1);
  Alcotest.(check bool) "p=0.3 passes sometimes" true (List.mem false p1)

let test_late_registration_armed () =
  with_disarm @@ fun () ->
  Fault.arm "test.late.*";
  (* The site registers after arming — exactly the LH_FAULT situation,
     where the env is parsed before any library module initializes. *)
  let s = Fault.site "test.late.unique" in
  match Fault.hit s with
  | () -> Alcotest.fail "late-registered site should be armed by the earlier glob"
  | exception Fault.Injected n -> Alcotest.(check string) "site name" "test.late.unique" n

let test_most_recent_arming_wins () =
  with_disarm @@ fun () ->
  let s = Fault.site "test.win" in
  Fault.arm ~kind:Fault.Timeout "test.win";
  Fault.arm ~kind:Fault.Generic "test.*";
  (match Fault.hit s with
  | () -> Alcotest.fail "expected a firing"
  | exception Fault.Injected _ -> ()
  | exception Budget.Timed_out -> Alcotest.fail "older arming won over the newer glob");
  Alcotest.(check bool) "armed_sites lists it" true (List.mem "test.win" (Fault.armed_sites ()))

let test_kinds_raise_budget_exns () =
  with_disarm @@ fun () ->
  let s = Fault.site "test.kind" in
  Fault.arm ~kind:Fault.Timeout "test.kind";
  (match Fault.hit s with
  | () -> Alcotest.fail "expected Timed_out"
  | exception Budget.Timed_out -> ());
  Fault.disarm_all ();
  Fault.arm ~kind:Fault.Oom "test.kind";
  match Fault.hit s with
  | () -> Alcotest.fail "expected Out_of_memory_budget"
  | exception Budget.Out_of_memory_budget -> ()

(* ---- pool: injected chunk fault re-raises; pool stays usable ---- *)

let test_pool_chunk_injection () =
  with_disarm @@ fun () ->
  let pool = Pool.create ~workers:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Fault.arm "pool.chunk";
      (match Pool.run pool ~chunks:8 (fun _ -> ()) with
      | () -> Alcotest.fail "expected the injected chunk fault to re-raise"
      | exception Fault.Injected s -> Alcotest.(check string) "site" "pool.chunk" s);
      Fault.disarm_all ();
      let n = Atomic.make 0 in
      Pool.run pool ~chunks:8 (fun _ -> Atomic.incr n);
      Alcotest.(check int) "pool fully usable after injected fault" 8 (Atomic.get n))

(* ---- engine-level crash-only recovery regressions ---- *)

let register_matrix e name triplets =
  let rows = Array.of_list (List.map (fun (i, _, _) -> i) triplets) in
  let cols = Array.of_list (List.map (fun (_, j, _) -> j) triplets) in
  let vals = Array.of_list (List.map (fun (_, _, v) -> v) triplets) in
  L.Engine.register e
    (Table.create ~name ~schema:Lh_datagen.Matrices.matrix_schema ~dict:(L.Engine.dict e)
       [| Table.Icol rows; Table.Icol cols; Table.Fcol vals |])

let ta = [ (0, 0, 1.0); (0, 1, 2.0); (1, 2, 3.0); (2, 1, -1.5); (3, 3, 4.0); (1, 0, 0.5) ]
let tb = [ (0, 1, 0.5); (1, 0, 2.0); (2, 2, -3.0); (3, 1, 1.0); (1, 3, 2.5); (2, 0, -0.25) ]

let small_engine () =
  let e = L.Engine.create () in
  register_matrix e "a" ta;
  register_matrix e "b" tb;
  e

let chain_sql = "select a.row, sum(a.v * b.v) as s from a, b where a.col = b.row group by a.row"

let expect_fault_error ~site = function
  | Ok _ -> Alcotest.failf "expected the %s fault to surface as a typed error" site
  | Error (L.Engine.Error.Fault_injected s) -> Alcotest.(check string) "fault site" site s
  | Error e -> Alcotest.failf "unexpected error: %s" (L.Engine.Error.to_string e)

let requery_matches ~what ~expect eng sql =
  match L.Engine.query_result eng sql with
  | Ok t -> Helpers.check_rows_equal what expect (Table.to_rows t)
  | Error e -> Alcotest.failf "%s: re-query failed: %s" what (L.Engine.Error.to_string e)

(* Aborting a trie build mid-query must leave no partial trie behind: the
   re-query on the same engine (which re-reads the trie cache) must match
   a clean engine exactly. *)
let test_trie_abort_requery () =
  with_disarm @@ fun () ->
  let expect = Table.to_rows (L.Engine.query (small_engine ()) chain_sql) in
  let e = small_engine () in
  Fault.arm "trie.build.node";
  expect_fault_error ~site:"trie.build.node" (L.Engine.query_result e chain_sql);
  Alcotest.(check bool) "fault fired" true (Fault.fired "trie.build.node" > 0);
  Fault.disarm_all ();
  requery_matches ~what:"re-query after aborted trie build" ~expect e chain_sql

(* A fault between planning and publishing the plan-cache entry must not
   leave a half-installed plan. *)
let test_plan_cache_abort () =
  with_disarm @@ fun () ->
  let expect = Table.to_rows (L.Engine.query (small_engine ()) chain_sql) in
  let e = small_engine () in
  Fault.arm "plan_cache.fill";
  expect_fault_error ~site:"plan_cache.fill" (L.Engine.query_result e chain_sql);
  Fault.disarm_all ();
  (* This run replans from scratch and installs the entry... *)
  requery_matches ~what:"first re-query (replans)" ~expect e chain_sql;
  (* ...and this one is served from the cache — same rows either way. *)
  requery_matches ~what:"second re-query (cached plan)" ~expect e chain_sql

let test_prepared_survives_bind_fault () =
  with_disarm @@ fun () ->
  let e = small_engine () in
  let stmt =
    L.Engine.prepare e
      "select a.row, sum(a.v * b.v) as s from a, b where a.col = b.row and b.v > $1 group by a.row"
  in
  let params = [ Dtype.VFloat (-10.0) ] in
  let expect = Table.to_rows (L.Engine.Stmt.exec stmt params) in
  Fault.arm "engine.bind";
  (match L.Engine.Stmt.exec stmt params with
  | _ -> Alcotest.fail "expected the bind fault to raise"
  | exception L.Engine.Error (L.Engine.Error.Fault_injected s) ->
      Alcotest.(check string) "fault site" "engine.bind" s);
  Fault.disarm_all ();
  Helpers.check_rows_equal "statement usable after failed exec" expect
    (Table.to_rows (L.Engine.Stmt.exec stmt params))

let test_load_csv_fault_leaves_catalog_clean () =
  with_disarm @@ fun () ->
  let path = Filename.temp_file "lh_fault" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      for i = 0 to 9 do
        Printf.fprintf oc "%d,%d,%g\n" i (i mod 4) (float_of_int i +. 0.5)
      done;
      close_out oc;
      let schema =
        Schema.create
          [
            ("i", Dtype.Int, Schema.Key);
            ("j", Dtype.Int, Schema.Key);
            ("v", Dtype.Float, Schema.Annotation);
          ]
      in
      let sql = "select sum(v) as s from t" in
      let clean = L.Engine.create () in
      ignore (L.Engine.load_csv clean ~name:"t" ~schema path);
      let expect = Table.to_rows (L.Engine.query clean sql) in
      let e = L.Engine.create () in
      Fault.arm ~trigger:(Fault.Nth 4) "csv.line";
      (match L.Engine.load_csv e ~name:"t" ~schema path with
      | _ -> Alcotest.fail "expected the csv fault to raise"
      | exception L.Engine.Error (L.Engine.Error.Fault_injected s) ->
          Alcotest.(check string) "fault site" "csv.line" s);
      Alcotest.(check bool)
        "no partial table registered" true
        (L.Catalog.find (L.Engine.catalog e) "t" = None);
      Fault.disarm_all ();
      ignore (L.Engine.load_csv e ~name:"t" ~schema path);
      requery_matches ~what:"query after recovered ingest" ~expect e sql)

(* ---- budget checkpoints inside the BLAS kernels ---- *)

let test_budget_checked_in_kernels () =
  let b = Budget.create ~max_seconds:0.0 () in
  let m = Dense.init ~rows:128 ~cols:16 (fun i j -> float_of_int ((i * 7) + j)) in
  let x = Array.make 16 1.0 in
  Budget.start b;
  (match Dense.gemv ~budget:b m x with
  | _ -> Alcotest.fail "gemv: expected Timed_out"
  | exception Budget.Timed_out -> ());
  Budget.start b;
  (match Dense.gemm ~budget:b m (Dense.init ~rows:16 ~cols:8 (fun _ _ -> 1.0)) with
  | _ -> Alcotest.fail "gemm: expected Timed_out"
  | exception Budget.Timed_out -> ());
  let coo =
    Lh_blas.Coo.create ~nrows:4 ~ncols:4 ~row:[| 0; 1; 2; 3 |] ~col:[| 1; 2; 3; 0 |]
      ~value:[| 1.0; 2.0; 3.0; 4.0 |]
  in
  let s = Csr.of_coo coo in
  Budget.start b;
  (match Csr.spmv ~budget:b s (Array.make 4 1.0) with
  | _ -> Alcotest.fail "spmv: expected Timed_out"
  | exception Budget.Timed_out -> ());
  Budget.start b;
  (match Csr.spgemm ~budget:b s s with
  | _ -> Alcotest.fail "spgemm: expected Timed_out"
  | exception Budget.Timed_out -> ());
  (* The default budget is unlimited: the same calls succeed. *)
  ignore (Dense.gemv m x);
  ignore (Csr.spgemm s s)

(* ---- the full per-site sweep, in miniature ---- *)

let test_crashtest_smoke () =
  let summary = Lh_qgen.Crashtest.run ~seed:7 () in
  if not (Lh_qgen.Crashtest.ok summary) then
    Alcotest.failf "crashtest failed:\n%s" (Lh_qgen.Crashtest.to_text summary)

(* ---- property: any injected fault => typed error + correct re-query ---- *)

let gen_inject =
  QCheck2.Gen.(
    let site =
      oneofl
        [
          "engine.query";
          "engine.prepare";
          "engine.bind";
          "plan_cache.fill";
          "exec.wcoj.leaf";
          "trie.build.node";
        ]
    in
    let kind = oneofl [ Fault.Generic; Fault.Timeout; Fault.Oom ] in
    let table =
      list_size (int_range 0 20)
        (let* i = int_range 0 4 in
         let* j = int_range 0 4 in
         let* v = int_range (-3) 3 in
         return (i, j, float_of_int v))
    in
    triple site kind (pair table table))

let qcheck_fault_recovery =
  Helpers.qtest ~count:60 "injected fault => typed error and correct re-query" gen_inject
    (fun (site, kind, (rows_a, rows_b)) ->
      with_disarm @@ fun () ->
      let mk () =
        let e = L.Engine.create () in
        register_matrix e "a" rows_a;
        register_matrix e "b" rows_b;
        e
      in
      match L.Engine.query_result (mk ()) chain_sql with
      | Error _ -> false (* the chain query is valid on any input *)
      | Ok t -> (
          let expect = Rows.canonical (Table.to_rows t) in
          let e = mk () in
          Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
          let res = L.Engine.query_result e chain_sql in
          let fired = Fault.fired site > 0 in
          Fault.disarm_all ();
          let typed_error_ok =
            match (kind, res) with
            | _, Ok _ -> not fired (* firing must never yield a silent success *)
            | Fault.Generic, Error (L.Engine.Error.Fault_injected s) -> fired && s = site
            | (Fault.Timeout | Fault.Oom), Error L.Engine.Error.Budget_exceeded -> fired
            | _, Error _ -> false
          in
          typed_error_ok
          &&
          match L.Engine.query_result e chain_sql with
          | Ok t2 -> Rows.canonical (Table.to_rows t2) = expect
          | Error _ -> false))

let () =
  Alcotest.run "levelheaded-fault"
    [
      ( "registry",
        [
          Alcotest.test_case "glob matching" `Quick test_glob_match;
          Alcotest.test_case "LH_FAULT spec parsing" `Quick test_parse_spec;
          Alcotest.test_case "nth trigger fires exactly once" `Quick test_nth_trigger;
          Alcotest.test_case "prob trigger deterministic per seed" `Quick
            test_prob_deterministic;
          Alcotest.test_case "late-registered site picks up armed glob" `Quick
            test_late_registration_armed;
          Alcotest.test_case "most recent arming wins" `Quick test_most_recent_arming_wins;
          Alcotest.test_case "timeout/oom kinds raise budget exceptions" `Quick
            test_kinds_raise_budget_exns;
        ] );
      ("pool", [ Alcotest.test_case "injected chunk fault" `Quick test_pool_chunk_injection ]);
      ( "engine",
        [
          Alcotest.test_case "aborted trie build leaves no partial cache" `Quick
            test_trie_abort_requery;
          Alcotest.test_case "aborted plan-cache fill leaves no partial entry" `Quick
            test_plan_cache_abort;
          Alcotest.test_case "prepared statement survives bind fault" `Quick
            test_prepared_survives_bind_fault;
          Alcotest.test_case "aborted CSV load leaves catalog clean" `Quick
            test_load_csv_fault_leaves_catalog_clean;
        ] );
      ( "budget",
        [ Alcotest.test_case "kernels obey the budget" `Quick test_budget_checked_in_kernels ] );
      ( "crashtest",
        [ Alcotest.test_case "every fault site recovers" `Quick test_crashtest_smoke ] );
      ("property", [ qcheck_fault_recovery ]);
    ]
