(* Prepared statements, the plan cache, and the typed error surface
   (engine.mli): parameter binding must agree with direct evaluation,
   cache hits must actually skip planning, invalidation must be exactly
   as documented, and every failure mode must surface as Engine.Error. *)

module L = Levelheaded
module Dtype = Lh_storage.Dtype
module Table = Lh_storage.Table
module Date = Lh_storage.Date
module Obs = Lh_obs.Obs
module Report = Lh_obs.Report
module Ast = Lh_sql.Ast
module Normalize = Lh_sql.Normalize

let cval name (r : Report.t) = Option.value (List.assoc_opt name r.Report.counters) ~default:0
let has_span name (r : Report.t) = List.exists (fun (s : Obs.span) -> s.Obs.sname = name) r.Report.spans

let error_of f =
  match f () with
  | _ -> Alcotest.fail "expected Engine.Error, got a result"
  | exception L.Engine.Error e -> e

let check_error name expect f =
  Alcotest.(check string) name expect (L.Engine.Error.to_string (error_of f))

(* ---- binding agrees with direct evaluation (TPC-H Q6 shape) ---- *)

let q6_params =
  "select sum(l_extendedprice * l_discount) as revenue from lineitem where l_shipdate >= $1 \
   and l_shipdate < $2 and l_discount between $3 and $4 and l_quantity < $5"

let q6_values lo hi =
  [
    Dtype.VDate (Date.of_string lo);
    Dtype.VDate (Date.of_string hi);
    Dtype.VFloat 0.05;
    Dtype.VFloat 0.07;
    Dtype.VInt 24;
  ]

let test_exec_matches_direct () =
  let eng = Lazy.force Helpers.tpch_engine in
  let stmt = L.Engine.prepare eng q6_params in
  Alcotest.(check int) "nparams" 5 (L.Engine.Stmt.nparams stmt);
  Helpers.check_rows_equal "Q6 via $1..$5"
    (Table.to_rows (L.Engine.query eng Helpers.q6))
    (Table.to_rows (L.Engine.Stmt.exec stmt (q6_values "1994-01-01" "1995-01-01")));
  (* Rebinding the same statement — one plan, another year's answer. *)
  let direct95 =
    L.Engine.query eng
      "select sum(l_extendedprice * l_discount) as revenue from lineitem where l_shipdate >= \
       date '1995-01-01' and l_shipdate < date '1996-01-01' and l_discount between 0.05 and \
       0.07 and l_quantity < 24"
  in
  Helpers.check_rows_equal "rebound to 1995"
    (Table.to_rows direct95)
    (Table.to_rows (L.Engine.Stmt.exec stmt (q6_values "1995-01-01" "1996-01-01")))

let test_anonymous_params () =
  let eng = Lazy.force Helpers.tpch_engine in
  let stmt =
    L.Engine.prepare eng
      "select count(*) as c from lineitem where l_quantity < ? and l_discount < ?"
  in
  Alcotest.(check int) "? auto-numbered" 2 (L.Engine.Stmt.nparams stmt);
  Helpers.check_rows_equal "? binds positionally"
    (Table.to_rows
       (L.Engine.query eng
          "select count(*) as c from lineitem where l_quantity < 10 and l_discount < 0.03"))
    (Table.to_rows (L.Engine.Stmt.exec stmt [ Dtype.VInt 10; Dtype.VFloat 0.03 ]))

(* ---- parameter misuse: every mode is a typed error ---- *)

let test_param_errors () =
  let eng = Lazy.force Helpers.tpch_engine in
  (match
     error_of (fun () ->
         L.Engine.prepare eng
           "select count(*) as c from lineitem where l_quantity < $1 and l_discount < ?")
   with
  | L.Engine.Error.Parse_error _ -> ()
  | e -> Alcotest.failf "mixed $n/? should be Parse_error, got %s" (L.Engine.Error.to_string e));
  (match
     error_of (fun () ->
         L.Engine.prepare eng "select count(*) as c from lineitem where l_quantity < $2")
   with
  | L.Engine.Error.Semantic _ -> ()
  | e -> Alcotest.failf "gap in numbering should be Semantic, got %s" (L.Engine.Error.to_string e));
  let stmt =
    L.Engine.prepare eng "select count(*) as c from lineitem where l_quantity < $1"
  in
  (match error_of (fun () -> L.Engine.Stmt.exec stmt []) with
  | L.Engine.Error.Semantic _ -> ()
  | e -> Alcotest.failf "arity mismatch should be Semantic, got %s" (L.Engine.Error.to_string e));
  (* A parameterized query through the unprepared entry point is refused:
     there is nothing to bind $1 to. *)
  match L.Engine.query_result eng "select count(*) as c from lineitem where l_quantity < $1" with
  | Error (L.Engine.Error.Semantic _) -> ()
  | Error e -> Alcotest.failf "unbound param should be Semantic, got %s" (L.Engine.Error.to_string e)
  | Ok _ -> Alcotest.fail "unbound param must not execute"

let test_typed_errors () =
  let eng = Lazy.force Helpers.tpch_engine in
  let expect name sql check =
    match L.Engine.query_result eng sql with
    | Ok _ -> Alcotest.failf "%s: expected an error" name
    | Error e ->
        if not (check e) then
          Alcotest.failf "%s: wrong error %s" name (L.Engine.Error.to_string e)
  in
  expect "unknown table" "select count(*) as c from nosuch"
    (function L.Engine.Error.Unknown_table "nosuch" -> true | _ -> false);
  expect "unknown column" "select count(*) as c from lineitem where nosuch_col < 3"
    (function L.Engine.Error.Unknown_column _ -> true | _ -> false);
  expect "parse rejection" "select from where"
    (function L.Engine.Error.Parse_error _ -> true | _ -> false);
  check_error "raising entry point agrees" "unknown table \"nosuch\"" (fun () ->
      L.Engine.query eng "select count(*) as c from nosuch")

(* ---- plan cache: hits skip planning; literals share a plan ---- *)

let matrix_rows vals =
  List.map (fun (i, j, v) -> [ Dtype.VInt i; Dtype.VInt j; Dtype.VFloat v ]) vals

let matrix_engine ?config () =
  let e = L.Engine.create ?config () in
  ignore
    (L.Engine.register_rows e ~name:"m" ~schema:Lh_datagen.Matrices.matrix_schema
       (matrix_rows [ (0, 1, 2.0); (1, 2, 3.0); (5, 0, 1.0) ]));
  e

let smm v =
  Printf.sprintf
    "select m1.row, m2.col, sum(m1.v * m2.v) as v from m m1, m m2 where m1.col = m2.row and \
     m1.v < %g group by m1.row, m2.col"
    v

let test_cache_hit_skips_planning () =
  let e = matrix_engine () in
  let _, _, cold = L.Engine.query_analyze e (smm 10.0) in
  Alcotest.(check int) "cold misses" 1 (cval "plan_cache.miss" cold);
  Alcotest.(check int) "cold never hits" 0 (cval "plan_cache.hit" cold);
  Alcotest.(check bool) "cold builds a GHD" true (has_span "plan.ghd" cold);
  Alcotest.(check bool) "cold orders attributes" true (has_span "plan.attr_order" cold);
  let _, _, warm = L.Engine.query_analyze e (smm 10.0) in
  Alcotest.(check int) "warm hits" 1 (cval "plan_cache.hit" warm);
  Alcotest.(check int) "warm never misses" 0 (cval "plan_cache.miss" warm);
  Alcotest.(check bool) "warm skips the GHD" false (has_span "plan.ghd" warm);
  Alcotest.(check bool) "warm skips attribute ordering" false (has_span "plan.attr_order" warm);
  (* Normalization: a different literal is the same cached plan. *)
  let _, _, other = L.Engine.query_analyze e (smm 99.0) in
  Alcotest.(check int) "different literal still hits" 1 (cval "plan_cache.hit" other);
  Helpers.check_rows_equal "and still filters by its own literal"
    (let e2 = matrix_engine () in
     Table.to_rows (L.Engine.query e2 (smm 2.5)))
    (Table.to_rows (L.Engine.query e (smm 2.5)))

let test_cache_eviction_and_disable () =
  let config = { L.Config.default with L.Config.plan_cache_capacity = 1 } in
  let e = matrix_engine ~config () in
  ignore (L.Engine.query e (smm 10.0));
  let _, _, second = L.Engine.query_analyze e "select sum(v) as s from m" in
  Alcotest.(check int) "capacity 1 evicts" 1 (cval "plan_cache.evict" second);
  let _, _, back = L.Engine.query_analyze e (smm 10.0) in
  Alcotest.(check int) "evicted plan misses again" 1 (cval "plan_cache.miss" back);
  (* capacity 0 disables caching entirely *)
  let e0 = matrix_engine ~config:{ config with L.Config.plan_cache_capacity = 0 } () in
  ignore (L.Engine.query e0 (smm 10.0));
  let _, _, r = L.Engine.query_analyze e0 (smm 10.0) in
  Alcotest.(check int) "disabled: no hits" 0 (cval "plan_cache.hit" r);
  Alcotest.(check int) "disabled: no misses counted" 0 (cval "plan_cache.miss" r);
  Alcotest.(check bool) "disabled: replans every time" true (has_span "plan.ghd" r)

(* ---- set_config invalidation: plan-relevant knobs flush, others keep
   the cache (the §VI-A hot-run protocol depends on the latter) ---- *)

let test_set_config_invalidation () =
  let e = matrix_engine () in
  ignore (L.Engine.query e (smm 10.0));
  (* blas_targeting is re-checked at bind time, not baked into the plan:
     toggling it must keep the cache warm. *)
  L.Engine.set_config e { (L.Engine.config e) with L.Config.blas_targeting = false };
  let _, _, kept = L.Engine.query_analyze e (smm 10.0) in
  Alcotest.(check int) "plan-neutral knob keeps cache" 1 (cval "plan_cache.hit" kept);
  (* attr_order is baked into the plan: changing it must flush, and the
     next run must visibly re-run attribute ordering. *)
  L.Engine.set_config e { (L.Engine.config e) with L.Config.attr_order = L.Config.Naive };
  let _, _, flushed = L.Engine.query_analyze e (smm 10.0) in
  Alcotest.(check int) "plan-relevant knob flushes" 1 (cval "plan_cache.miss" flushed);
  Alcotest.(check int) "no stale hit" 0 (cval "plan_cache.hit" flushed);
  Alcotest.(check bool) "attribute ordering re-ran" true (has_span "plan.attr_order" flushed)

(* ---- live statements revalidate after catalog changes ---- *)

let test_stmt_revalidates () =
  let e = matrix_engine () in
  let stmt = L.Engine.prepare e (smm 10.0) in
  Alcotest.(check int) "initial rows" 2 (L.Engine.Stmt.exec stmt []).Table.nrows;
  ignore
    (L.Engine.register_rows e ~name:"m" ~schema:Lh_datagen.Matrices.matrix_schema
       (matrix_rows [ (7, 8, 1.0) ]));
  Alcotest.(check int) "sees replaced table" 0 (L.Engine.Stmt.exec stmt []).Table.nrows

let test_query_into () =
  let e = matrix_engine () in
  let t = L.Engine.query_into e ~name:"rowsum" "select m.row, sum(m.v) as s from m group by m.row" in
  Alcotest.(check string) "result is named" "rowsum" t.Table.name;
  Helpers.check_rows_equal "registered and queryable"
    [ [ Dtype.VFloat 6.0 ] ]
    (Table.to_rows (L.Engine.query e "select sum(s) as t from rowsum"))

(* ---- normalization properties over generated queries ---- *)

let profile = lazy (Lh_qgen.Dataset.profile (Lazy.force Helpers.tpch_engine))

let gen_ast =
  QCheck2.Gen.(
    let* seed = int_range 0 0xFFFFFF in
    let* index = int_range 0 500 in
    return (seed, index))

let generated (seed, index) =
  fst (Lh_qgen.Gen.generate (Lazy.force profile) ~seed ~index Lh_qgen.Gen.default_spec)

let qcheck_lift_roundtrip =
  Helpers.qtest ~count:300 "substitute inverts lift_literals" gen_ast (fun si ->
      let ast = generated si in
      let lifted, values = Normalize.lift_literals ast in
      Ast.query_params lifted = List.init (List.length values) (fun i -> i + 1)
      && Normalize.substitute lifted values = ast)

let qcheck_lift_idempotent =
  Helpers.qtest ~count:300 "lift_literals is idempotent" gen_ast (fun si ->
      let lifted, _ = Normalize.lift_literals (generated si) in
      let lifted2, values2 = Normalize.lift_literals lifted in
      values2 = [] && lifted2 = lifted)

let () =
  Alcotest.run "levelheaded-prepared"
    [
      ( "prepared",
        [
          Alcotest.test_case "exec matches direct (Q6)" `Quick test_exec_matches_direct;
          Alcotest.test_case "? parameters" `Quick test_anonymous_params;
          Alcotest.test_case "parameter misuse is typed" `Quick test_param_errors;
          Alcotest.test_case "statements revalidate" `Quick test_stmt_revalidates;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "hit skips planning" `Quick test_cache_hit_skips_planning;
          Alcotest.test_case "eviction and capacity 0" `Quick test_cache_eviction_and_disable;
          Alcotest.test_case "set_config invalidation" `Quick test_set_config_invalidation;
        ] );
      ( "errors",
        [
          Alcotest.test_case "typed error surface" `Quick test_typed_errors;
          Alcotest.test_case "query_into registers" `Quick test_query_into;
        ] );
      ("normalize", [ qcheck_lift_roundtrip; qcheck_lift_idempotent ]);
    ]
