(* Differential property suite for the layout-specialized set kernels.

   Every specialized entry point — of_array, inter, inter_into, count,
   foreach_inter, inter_many(_into), union, rank/nth, filter_range — is
   checked against a naive sorted-list model, over every forced layout
   pair (uint/uint, bs/uint, bs/bs) as well as the density-rule choice.
   Generators are biased toward the places kernels break: cardinality and
   span straddling the Sparse/Dense crossover (card = 16, span = 16*card),
   values packed around 63-bit word boundaries (the bitset word size),
   empty and singleton sets, and adjacent-but-disjoint ranges. *)

module Set_ = Lh_set.Set
module Bitset = Lh_set.Bitset
module Intersect = Lh_set.Intersect
module Vec = Lh_util.Vec.Int

let word_bits = 63

(* ---- model: plain sorted int lists ---- *)

let uniq l = Array.of_list (List.sort_uniq Int.compare l)
let model_inter a b = Array.of_list (List.filter (fun x -> Array.mem x b) (Array.to_list a))

let model_union a b =
  Array.of_list (List.sort_uniq Int.compare (Array.to_list a @ Array.to_list b))

let model_inter_many = function
  | [] -> invalid_arg "model_inter_many"
  | a :: rest -> List.fold_left model_inter a rest

let to_arr s =
  let acc = ref [] in
  Set_.iter (fun v -> acc := v :: !acc) s;
  Array.of_list (List.rev !acc)

(* ---- generators ---- *)

(* Sorted unique arrays, biased toward kernel edge cases. *)
let arr_gen =
  let open QCheck2.Gen in
  oneof
    [
      (* empty and singleton *)
      return [||];
      (let+ v = int_range 0 400 in
       [| v |]);
      (* crossover-biased: card straddles 16, span straddles card * 16 *)
      (let* card = int_range 12 20 in
       let* span_factor = int_range 8 24 in
       let* lo = int_range 0 100 in
       let span = max 1 (card * span_factor) in
       let+ l = list_size (return card) (int_range lo (lo + span - 1)) in
       uniq l);
      (* packed around 63-bit word boundaries *)
      (let* w = int_range 0 6 in
       let+ l =
         list_size (int_range 1 30)
           (let* k = int_range 0 3 in
            let+ d = int_range (-2) 2 in
            max 0 (((w + k) * word_bits) + d))
       in
       uniq l);
      (* dense runs with small holes *)
      (let* lo = int_range 0 50 in
       let* n = int_range 1 80 in
       let+ keep = list_size (return n) (int_range 0 9) in
       uniq (List.concat (List.mapi (fun i k -> if k < 8 then [ lo + i ] else []) keep)));
      (* generic sparse over a wide domain *)
      (let+ l = list_size (int_range 0 60) (int_range 0 2000) in
       uniq l);
    ]

let layout_gen = QCheck2.Gen.oneofl [ None; Some Set_.Sparse; Some Set_.Dense ]

(* A set plus the sorted array it was built from. *)
let set_gen =
  QCheck2.Gen.(
    let* arr = arr_gen in
    let+ layout = layout_gen in
    (arr, Set_.of_sorted_array ?layout arr))

let pair_gen = QCheck2.Gen.pair set_gen set_gen

(* ---- of_array / layout rule ---- *)

let qcheck_of_array =
  Helpers.qtest "of_array dedups, sorts, and obeys the density rule"
    QCheck2.Gen.(list_size (int_range 0 80) (int_range 0 600))
    (fun l ->
      let s = Set_.of_array (Array.of_list l) in
      let expect = uniq l in
      to_arr s = expect
      && Array.length expect = Set_.cardinality s
      &&
      (Array.length expect = 0
      || Set_.layout s
         = Set_.choose_layout ~card:(Array.length expect)
             ~range:(expect.(Array.length expect - 1) - expect.(0) + 1)))

(* ---- binary kernels vs model, all layout pairs ---- *)

let qcheck_inter =
  Helpers.qtest "inter = model (all layout pairs)" pair_gen (fun ((a, sa), (b, sb)) ->
      to_arr (Intersect.inter sa sb) = model_inter a b)

let qcheck_count =
  Helpers.qtest "count = |model inter| (all layout pairs)" pair_gen
    (fun ((a, sa), (b, sb)) ->
      Intersect.count sa sb = Array.length (model_inter a b))

let qcheck_foreach =
  Helpers.qtest "foreach_inter streams the model in order" pair_gen
    (fun ((a, sa), (b, sb)) ->
      let acc = ref [] in
      Intersect.foreach_inter (fun v -> acc := v :: !acc) sa sb;
      Array.of_list (List.rev !acc) = model_inter a b)

let qcheck_inter_into =
  Helpers.qtest "inter_into fills the buffer with the model" pair_gen
    (fun ((a, sa), (b, sb)) ->
      let buf = Vec.create ~capacity:4 () in
      Intersect.inter_into buf sa sb;
      Vec.to_array buf = model_inter a b)

let qcheck_union =
  Helpers.qtest "union = model (all layout pairs)" pair_gen (fun ((a, sa), (b, sb)) ->
      to_arr (Set_.union sa sb) = model_union a b)

(* The executor pins one buffer per trie position and re-feeds it: a stale
   length or capacity carried over from the previous fill must never leak
   into the next result. *)
let qcheck_buffer_reuse =
  Helpers.qtest "inter_into reuse: second fill forgets the first" ~count:300
    QCheck2.Gen.(pair pair_gen pair_gen)
    (fun (((a, sa), (b, sb)), ((c, sc), (d, sd))) ->
      ignore a;
      ignore b;
      let buf = Vec.create ~capacity:2 () in
      Intersect.inter_into buf sa sb;
      Intersect.inter_into buf sc sd;
      Vec.to_array buf = model_inter c d)

(* ---- n-ary ---- *)

let sets_gen = QCheck2.Gen.(list_size (int_range 1 5) set_gen)

let qcheck_inter_many =
  Helpers.qtest "inter_many = model fold" sets_gen (fun pairs ->
      let arrs = List.map fst pairs and sets = List.map snd pairs in
      to_arr (Intersect.inter_many sets) = model_inter_many arrs)

let qcheck_inter_many_into =
  Helpers.qtest "inter_many_into lands the model in dst" sets_gen (fun pairs ->
      let arrs = List.map fst pairs and sets = List.map snd pairs in
      let dst = Vec.create ~capacity:2 () and tmp = Vec.create ~capacity:2 () in
      (* pre-poison both buffers: anything surviving a clear is a bug *)
      Vec.push dst 999999;
      Vec.push tmp 999998;
      Intersect.inter_many_into dst tmp sets;
      Vec.to_array dst = model_inter_many arrs)

(* ---- rank / nth / filter_range ---- *)

let qcheck_rank_nth =
  Helpers.qtest "rank and nth invert each other" set_gen (fun (arr, s) ->
      Array.for_all (fun v -> Set_.nth s (Set_.rank s v) = v) arr
      && Array.length arr = Set_.cardinality s
      && Array.for_all
           (fun i -> Set_.rank s (Set_.nth s i) = i)
           (Array.init (Array.length arr) Fun.id))

let qcheck_filter_range =
  Helpers.qtest "filter_range = model filter"
    QCheck2.Gen.(pair set_gen (pair (int_range 0 700) (int_range 0 700)))
    (fun ((arr, s), (x, y)) ->
      let lo = min x y and hi = max x y in
      to_arr (Set_.filter_range ~lo ~hi s)
      = Array.of_list (List.filter (fun v -> v >= lo && v <= hi) (Array.to_list arr)))

(* ---- operand-order regression ---- *)

(* sort_for_inter's contract: bitsets first, ascending cardinality within a
   layout, ties keeping caller order. The old polymorphic-compare sort
   ordered ties by structural content — e.g. it flipped two equal-size uint
   sets depending on their first differing element, and its result could
   change when a bitset's lazy rank cache was populated. Physical identity
   pins stability exactly. *)
let test_sort_for_inter_stable () =
  let u1 = Set_.of_sorted_array ~layout:Set_.Sparse [| 9; 20; 31 |] in
  let u2 = Set_.of_sorted_array ~layout:Set_.Sparse [| 1; 2; 3 |] in
  let b1 = Set_.of_sorted_array ~layout:Set_.Dense (Array.init 20 (fun i -> 2 * i)) in
  let b2 = Set_.of_sorted_array ~layout:Set_.Dense (Array.init 20 (fun i -> (2 * i) + 1)) in
  let sorted = Intersect.sort_for_inter [ u1; b1; u2; b2 ] in
  let expect = [ b1; b2; u1; u2 ] in
  Alcotest.(check int) "length" 4 (List.length sorted);
  List.iteri
    (fun i (got, want) ->
      Alcotest.(check bool) (Printf.sprintf "slot %d is the expected operand" i) true (got == want))
    (List.combine sorted expect);
  (* populating a lazy rank cache must not change the order *)
  ignore (Set_.rank b2 1);
  let sorted' = Intersect.sort_for_inter [ u1; b1; u2; b2 ] in
  List.iteri
    (fun i (got, want) ->
      Alcotest.(check bool) (Printf.sprintf "slot %d stable after rank" i) true (got == want))
    (List.combine sorted' expect)

let test_inter_many_permutations () =
  let a = Set_.of_sorted_array ~layout:Set_.Dense (Array.init 31 (fun i -> 3 * i)) in
  let b = Set_.of_sorted_array ~layout:Set_.Sparse [| 0; 6; 12; 18; 24; 30; 60; 90 |] in
  let c = Set_.of_sorted_array ~layout:Set_.Sparse [| 6; 12; 30; 90; 900 |] in
  let expect = to_arr (Intersect.inter_many [ a; b; c ]) in
  Alcotest.(check (array int)) "triple" [| 6; 12; 30; 90 |] expect;
  List.iter
    (fun perm ->
      Alcotest.(check (array int)) "permutation invariant" expect
        (to_arr (Intersect.inter_many perm));
      let dst = Vec.create () and tmp = Vec.create () in
      Intersect.inter_many_into dst tmp perm;
      Alcotest.(check (array int)) "buffered permutation invariant" expect (Vec.to_array dst))
    [ [ a; c; b ]; [ b; a; c ]; [ b; c; a ]; [ c; a; b ]; [ c; b; a ] ]

(* Adjacent-but-disjoint word ranges: the bs∩bs kernel must cope with
   non-overlapping offsets without touching either bitset's words. *)
let test_disjoint_word_ranges () =
  let lo = Set_.of_sorted_array ~layout:Set_.Dense (Array.init 20 (fun i -> i)) in
  let hi = Set_.of_sorted_array ~layout:Set_.Dense (Array.init 20 (fun i -> 1000 + i)) in
  Alcotest.(check int) "count" 0 (Intersect.count lo hi);
  Alcotest.(check (array int)) "inter" [||] (to_arr (Intersect.inter lo hi));
  let buf = Vec.create () in
  Intersect.inter_into buf lo hi;
  Alcotest.(check int) "inter_into" 0 (Vec.length buf);
  Intersect.foreach_inter (fun _ -> Alcotest.fail "streamed a value from a disjoint pair") lo hi

let () =
  Alcotest.run "set_props"
    [
      ( "model",
        [
          qcheck_of_array;
          qcheck_inter;
          qcheck_count;
          qcheck_foreach;
          qcheck_inter_into;
          qcheck_union;
          qcheck_buffer_reuse;
          qcheck_inter_many;
          qcheck_inter_many_into;
          qcheck_rank_nth;
          qcheck_filter_range;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "sort_for_inter stability" `Quick test_sort_for_inter_stable;
          Alcotest.test_case "inter_many permutations" `Quick test_inter_many_permutations;
          Alcotest.test_case "disjoint word ranges" `Quick test_disjoint_word_ranges;
        ] );
    ]
