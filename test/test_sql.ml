open Lh_sql

let expr = Alcotest.testable Ast.pp_expr ( = )
let predt = Alcotest.testable Ast.pp_pred ( = )

(* ---- lexer ---- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "SELECT a.b, 1 <= 2.5 <> 'it''s'" in
  Alcotest.(check (list string))
    "tokens"
    [ "select"; "a"; "."; "b"; ","; "1"; "<="; "2.5"; "<>"; "'it's'"; "<eof>" ]
    (Array.to_list (Array.map Lexer.token_to_string toks))

let test_lexer_comment () =
  let toks = Lexer.tokenize "1 -- comment\n2" in
  Alcotest.(check int) "two ints + eof" 3 (Array.length toks)

let test_lexer_errors () =
  (match Lexer.tokenize "'unterminated" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "unterminated string accepted");
  match Lexer.tokenize "a @ b" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "bad char accepted"

(* ---- expressions ---- *)

let col ?rel c = Ast.Col { Ast.relation = rel; column = c }

let test_parse_precedence () =
  Alcotest.check expr "mul binds tighter"
    (Ast.Add (col "a", Ast.Mul (col "b", col "c")))
    (Parser.parse_expr "a + b * c");
  Alcotest.check expr "parens"
    (Ast.Mul (Ast.Add (col "a", col "b"), col "c"))
    (Parser.parse_expr "(a + b) * c");
  Alcotest.check expr "left assoc sub"
    (Ast.Sub (Ast.Sub (Ast.Int_lit 1, Ast.Int_lit 2), Ast.Int_lit 3))
    (Parser.parse_expr "1 - 2 - 3")

let test_parse_unary_minus () =
  Alcotest.check expr "neg" (Ast.Neg (col "x")) (Parser.parse_expr "-x")

let test_parse_date_interval () =
  Alcotest.check expr "date literal"
    (Ast.Date_lit (Lh_storage.Date.of_string "1994-01-01"))
    (Parser.parse_expr "date '1994-01-01'");
  Alcotest.check expr "date minus interval folds"
    (Ast.Date_lit (Lh_storage.Date.of_string "1998-09-02"))
    (Parser.parse_expr "date '1998-12-01' - interval '90' day")

let test_parse_case_extract () =
  Alcotest.check expr "case"
    (Ast.Case_when (Ast.Cmp (Ast.Eq, col "n", Ast.String_lit "BRAZIL"), col "v", Ast.Int_lit 0))
    (Parser.parse_expr "case when n = 'BRAZIL' then v else 0 end");
  Alcotest.check expr "extract" (Ast.Extract_year (col "d"))
    (Parser.parse_expr "extract(year from d)")

(* ---- predicates ---- *)

let test_parse_pred_and_or () =
  Alcotest.check predt "and/or precedence"
    (Ast.Or
       ( Ast.And (Ast.Cmp (Ast.Eq, col "a", Ast.Int_lit 1), Ast.Cmp (Ast.Eq, col "b", Ast.Int_lit 2)),
         Ast.Cmp (Ast.Eq, col "c", Ast.Int_lit 3) ))
    (Parser.parse_pred "a = 1 and b = 2 or c = 3")

let test_parse_pred_between_like () =
  Alcotest.check predt "between"
    (Ast.Between (col "x", Ast.Float_lit 0.05, Ast.Float_lit 0.07))
    (Parser.parse_pred "x between 0.05 and 0.07");
  Alcotest.check predt "like" (Ast.Like (col "p", "%green%")) (Parser.parse_pred "p like '%green%'");
  Alcotest.check predt "not like" (Ast.Not_like (col "p", "a_c"))
    (Parser.parse_pred "p not like 'a_c'")

let test_parse_pred_paren_backtrack () =
  (* '(' can open an expression or a predicate. *)
  Alcotest.check predt "paren pred"
    (Ast.Or (Ast.Cmp (Ast.Eq, col "a", Ast.Int_lit 1), Ast.Cmp (Ast.Eq, col "b", Ast.Int_lit 2)))
    (Parser.parse_pred "(a = 1 or b = 2)");
  Alcotest.check predt "paren expr"
    (Ast.Cmp (Ast.Gt, Ast.Mul (Ast.Add (col "a", col "b"), Ast.Int_lit 2), Ast.Int_lit 3))
    (Parser.parse_pred "(a + b) * 2 > 3")

(* ---- queries ---- *)

let test_parse_query_shape () =
  let q =
    Parser.parse
      "select n_name, sum(rev) as total from nation n, orders where n.x = orders.y group by n_name;"
  in
  Alcotest.(check int) "select items" 2 (List.length q.Ast.select);
  Alcotest.(check (list (pair string string)))
    "from" [ ("nation", "n"); ("orders", "orders") ] q.Ast.from;
  Alcotest.(check bool) "where present" true (Option.is_some q.Ast.where);
  Alcotest.(check int) "group by" 1 (List.length q.Ast.group_by)

let test_parse_aliases () =
  let q = Parser.parse "select a as x, b y, sum(c) from t" in
  match q.Ast.select with
  | [ Ast.Plain (_, "x"); Ast.Plain (_, "y"); Ast.Aggregate (Ast.Sum, _, _) ] -> ()
  | _ -> Alcotest.fail "alias handling"

let test_parse_count_star () =
  let q = Parser.parse "select count(*) as c from t" in
  match q.Ast.select with
  | [ Ast.Aggregate (Ast.Count, None, "c") ] -> ()
  | _ -> Alcotest.fail "count(*)"

let test_parse_semiring_aggs () =
  let q =
    Parser.parse "select min_plus(a.v + b.v) d, reaches(*) r, agg('max_plus', a.v) m from a, b"
  in
  (match q.Ast.select with
  | [
   Ast.Aggregate (Ast.Min_plus, Some _, "d");
   Ast.Aggregate (Ast.Reaches, None, "r");
   Ast.Aggregate (Ast.Fold "max_plus", Some _, "m");
  ] ->
      ()
  | _ -> Alcotest.fail "semiring aggregate parse");
  (* pp output is the plan-cache key: it must reparse to the same AST *)
  let printed = Format.asprintf "%a" Ast.pp_query q in
  if Parser.parse printed <> q then Alcotest.failf "semiring roundtrip failed:\n%s" printed;
  match Parser.parse "select agg(x, a.v) from a" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "agg() must take a string-literal semiring name"

let test_parse_errors () =
  List.iter
    (fun sql ->
      match Parser.parse sql with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" sql)
    [
      "select"; "select a"; "select a from"; "select a from t where"; "select a from t group";
      "select a from t trailing garbage ,"; "select sum() from t";
    ]

let test_pp_reparse_roundtrip () =
  List.iter
    (fun (_, sql) ->
      let q = Parser.parse sql in
      let printed = Format.asprintf "%a" Ast.pp_query q in
      let q2 = Parser.parse printed in
      if q <> q2 then Alcotest.failf "roundtrip failed for %s:\n%s" sql printed)
    (Helpers.tpch_queries @ Helpers.la_queries)

(* ---- LIKE matching ---- *)

let test_like_match () =
  let cases =
    [
      ("%green%", "dark green ivory", true);
      ("%green%", "greenish", true);
      ("%green%", "gren", false);
      ("abc", "abc", true);
      ("abc", "abcd", false);
      ("a_c", "abc", true);
      ("a_c", "ac", false);
      ("%", "", true);
      ("", "", true);
      ("", "x", false);
      ("%a%b%", "xxaxxbxx", true);
      ("%a%b%", "b a", false);
      ("a%", "a", true);
      ("%a", "ba", true);
    ]
  in
  List.iter
    (fun (pattern, s, want) ->
      Alcotest.(check bool) (Printf.sprintf "%s ~ %s" pattern s) want (Ast.like_match ~pattern s))
    cases

let qcheck_like_self =
  Helpers.qtest "literal pattern matches itself"
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 12))
    (fun s -> Ast.like_match ~pattern:s s)

let qcheck_like_percent_prefix =
  Helpers.qtest "%s matches any suffix context"
    QCheck2.Gen.(
      pair (string_size ~gen:(char_range 'a' 'z') (int_range 0 6))
        (string_size ~gen:(char_range 'a' 'z') (int_range 0 6)))
    (fun (pre, s) -> Ast.like_match ~pattern:("%" ^ s) (pre ^ s))

let test_expr_columns () =
  let e = Parser.parse_expr "a * (b + t.c) / 2" in
  Alcotest.(check int) "three columns" 3 (List.length (Ast.expr_columns e))

let () =
  Alcotest.run "lh_sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comment;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "expr",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "unary minus" `Quick test_parse_unary_minus;
          Alcotest.test_case "date/interval" `Quick test_parse_date_interval;
          Alcotest.test_case "case/extract" `Quick test_parse_case_extract;
          Alcotest.test_case "expr_columns" `Quick test_expr_columns;
        ] );
      ( "pred",
        [
          Alcotest.test_case "and/or" `Quick test_parse_pred_and_or;
          Alcotest.test_case "between/like" `Quick test_parse_pred_between_like;
          Alcotest.test_case "paren backtracking" `Quick test_parse_pred_paren_backtrack;
        ] );
      ( "query",
        [
          Alcotest.test_case "shape" `Quick test_parse_query_shape;
          Alcotest.test_case "aliases" `Quick test_parse_aliases;
          Alcotest.test_case "count star" `Quick test_parse_count_star;
          Alcotest.test_case "semiring aggregates" `Quick test_parse_semiring_aggs;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pp/reparse roundtrip" `Quick test_pp_reparse_roundtrip;
        ] );
      ( "like",
        [
          Alcotest.test_case "cases" `Quick test_like_match;
          qcheck_like_self;
          qcheck_like_percent_prefix;
        ] );
    ]
