module Set_ = Lh_set.Set
module Bitset = Lh_set.Bitset
module Intersect = Lh_set.Intersect

let sorted_gen =
  QCheck2.Gen.(
    let* l = list_size (int_range 0 60) (int_range 0 300) in
    return (Array.of_list (List.sort_uniq compare l)))

let model_inter a b = Array.of_list (List.filter (fun x -> Array.mem x b) (Array.to_list a))

let model_union a b =
  Array.of_list (List.sort_uniq compare (Array.to_list a @ Array.to_list b))

(* ---- bitset ---- *)

let test_bitset_add_mem () =
  let b = Bitset.create ~offset:100 ~nbits:200 in
  Bitset.add b 100;
  Bitset.add b 150;
  Bitset.add b 299;
  Bitset.add b 150;
  Alcotest.(check int) "card" 3 (Bitset.cardinality b);
  Alcotest.(check bool) "mem 150" true (Bitset.mem b 150);
  Alcotest.(check bool) "not mem 151" false (Bitset.mem b 151);
  Alcotest.(check bool) "out of range" false (Bitset.mem b 99)

let test_bitset_iter_sorted () =
  let vals = [| 3; 17; 64; 65; 126; 200 |] in
  let b = Bitset.of_sorted_array vals in
  Alcotest.(check (array int)) "roundtrip" vals (Bitset.to_sorted_array b)

let test_bitset_min_max () =
  let b = Bitset.of_sorted_array [| 77; 100; 3001 |] in
  Alcotest.(check int) "min" 77 (Bitset.min_elt b);
  Alcotest.(check int) "max" 3001 (Bitset.max_elt b)

let test_bitset_rank () =
  let vals = [| 5; 9; 63; 64; 127; 128; 1000 |] in
  let b = Bitset.of_sorted_array vals in
  Array.iteri (fun i v -> Alcotest.(check int) (Printf.sprintf "rank %d" v) i (Bitset.rank b v)) vals;
  Alcotest.check_raises "absent" Not_found (fun () -> ignore (Bitset.rank b 6))

let test_bitset_popcount () =
  Alcotest.(check int) "zero" 0 (Bitset.popcount 0);
  Alcotest.(check int) "255" 8 (Bitset.popcount 255);
  Alcotest.(check int) "max_int" 62 (Bitset.popcount max_int)

let qcheck_bitset_inter =
  Helpers.qtest "bitset inter = model"
    QCheck2.Gen.(pair sorted_gen sorted_gen)
    (fun (a, b) ->
      QCheck2.assume (Array.length a > 0 && Array.length b > 0);
      let ba = Bitset.of_sorted_array a and bb = Bitset.of_sorted_array b in
      Bitset.to_sorted_array (Bitset.inter ba bb) = model_inter a b)

let qcheck_bitset_union =
  Helpers.qtest "bitset union = model"
    QCheck2.Gen.(pair sorted_gen sorted_gen)
    (fun (a, b) ->
      QCheck2.assume (Array.length a > 0 && Array.length b > 0);
      let ba = Bitset.of_sorted_array a and bb = Bitset.of_sorted_array b in
      Bitset.to_sorted_array (Bitset.union ba bb) = model_union a b)

let qcheck_bitset_rank_all =
  Helpers.qtest "bitset rank = position" sorted_gen (fun a ->
      QCheck2.assume (Array.length a > 0);
      let b = Bitset.of_sorted_array a in
      Array.to_list a |> List.mapi (fun i v -> Bitset.rank b v = i) |> List.for_all Fun.id)

let test_bitset_select () =
  let vals = [| 5; 9; 63; 64; 127; 128; 1000 |] in
  let b = Bitset.of_sorted_array vals in
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "select %d" i) v (Bitset.select b i))
    vals;
  Alcotest.check_raises "select -1" (Invalid_argument "Bitset.select: out of bounds")
    (fun () -> ignore (Bitset.select b (-1)));
  Alcotest.check_raises "select card" (Invalid_argument "Bitset.select: out of bounds")
    (fun () -> ignore (Bitset.select b (Array.length vals)))

let qcheck_bitset_select_inverse =
  Helpers.qtest "bitset select inverts rank" sorted_gen (fun a ->
      QCheck2.assume (Array.length a > 0);
      let b = Bitset.of_sorted_array a in
      Array.to_list a |> List.mapi (fun i v -> Bitset.select b i = v) |> List.for_all Fun.id)

(* ---- set layouts ---- *)

let test_layout_choice () =
  let dense = Set_.of_sorted_array (Array.init 100 Fun.id) in
  Alcotest.(check bool) "dense -> bs" true (Set_.layout dense = Set_.Dense);
  let sparse = Set_.of_sorted_array (Array.init 100 (fun i -> i * 1000)) in
  Alcotest.(check bool) "sparse -> uint" true (Set_.layout sparse = Set_.Sparse);
  let tiny = Set_.of_sorted_array [| 1; 2; 3 |] in
  Alcotest.(check bool) "tiny -> uint" true (Set_.layout tiny = Set_.Sparse)

let test_layout_forced () =
  let s = Set_.of_sorted_array ~layout:Set_.Dense (Array.init 4 (fun i -> i * 7)) in
  Alcotest.(check bool) "forced dense" true (Set_.layout s = Set_.Dense);
  Alcotest.(check int) "card" 4 (Set_.cardinality s)

let test_of_array_dedups () =
  let s = Set_.of_array [| 5; 1; 5; 3; 1 |] in
  Alcotest.(check (array int)) "sorted unique" [| 1; 3; 5 |] (Set_.to_array s)

let test_set_rank_nth () =
  List.iter
    (fun layout ->
      let vals = Array.init 50 (fun i -> i * 2) in
      let s = Set_.of_sorted_array ~layout vals in
      Alcotest.(check int) "rank 40" 20 (Set_.rank s 40);
      Alcotest.(check int) "nth 20" 40 (Set_.nth s 20);
      Alcotest.check_raises "rank absent" Not_found (fun () -> ignore (Set_.rank s 41)))
    [ Set_.Sparse; Set_.Dense ]

let test_set_iteri_ranks () =
  List.iter
    (fun layout ->
      let vals = [| 2; 5; 9; 100 |] in
      let s = Set_.of_sorted_array ~layout vals in
      let got = ref [] in
      Set_.iteri (fun r v -> got := (r, v) :: !got) s;
      Alcotest.(check (list (pair int int)))
        "ranked iteration"
        [ (0, 2); (1, 5); (2, 9); (3, 100) ]
        (List.rev !got))
    [ Set_.Sparse; Set_.Dense ]

let test_filter_range () =
  let s = Set_.of_sorted_array (Array.init 20 (fun i -> i * 5)) in
  Alcotest.(check (array int)) "range" [| 25; 30; 35 |]
    (Set_.to_array (Set_.filter_range ~lo:23 ~hi:36 s))

let test_empty_set () =
  Alcotest.(check bool) "empty" true (Set_.is_empty Set_.empty);
  Alcotest.(check int) "card" 0 (Set_.cardinality Set_.empty);
  Alcotest.check_raises "min of empty" Not_found (fun () -> ignore (Set_.min_elt Set_.empty))

(* ---- intersections ---- *)

let test_uint_uint_merge () =
  Alcotest.(check (array int)) "merge" [| 2; 4 |]
    (Intersect.uint_uint [| 1; 2; 3; 4 |] [| 2; 4; 6 |])

let test_uint_uint_gallop () =
  let big = Array.init 10_000 (fun i -> i * 2) in
  let small = [| 4; 5; 1997; 19_998 |] in
  Alcotest.(check (array int)) "gallop" [| 4; 19998 |] (Intersect.uint_uint small big);
  Alcotest.(check (array int)) "gallop sym" [| 4; 19998 |] (Intersect.uint_uint big small)

let test_inter_mixed_layouts () =
  let a = Set_.of_sorted_array ~layout:Set_.Dense (Array.init 64 Fun.id) in
  let b = Set_.of_sorted_array ~layout:Set_.Sparse [| 10; 63; 64; 100 |] in
  Alcotest.(check (array int)) "bs ∩ uint" [| 10; 63 |] (Set_.to_array (Intersect.inter a b))

let test_inter_many_order () =
  let a = Set_.of_sorted_array ~layout:Set_.Dense (Array.init 100 Fun.id) in
  let b = Set_.of_sorted_array ~layout:Set_.Sparse [| 5; 50; 150 |] in
  let c = Set_.of_sorted_array ~layout:Set_.Sparse [| 50; 150 |] in
  Alcotest.(check (array int)) "three way" [| 50 |]
    (Set_.to_array (Intersect.inter_many [ b; a; c ]))

let test_inter_many_single () =
  let a = Set_.of_sorted_array [| 1; 2 |] in
  Alcotest.(check bool) "identity" true (Set_.equal a (Intersect.inter_many [ a ]))

let gen_set =
  QCheck2.Gen.(
    let* arr = sorted_gen in
    let* forced = opt (oneofl [ Set_.Sparse; Set_.Dense ]) in
    match forced with
    | Some l when Array.length arr > 0 -> return (Set_.of_sorted_array ~layout:l arr)
    | _ -> return (Set_.of_sorted_array arr))

let qcheck_inter_model =
  Helpers.qtest ~count:400 "inter = model across layouts"
    QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) ->
      Set_.to_array (Intersect.inter a b) = model_inter (Set_.to_array a) (Set_.to_array b))

let qcheck_union_model =
  Helpers.qtest ~count:400 "union = model across layouts"
    QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) ->
      Set_.to_array (Set_.union a b) = model_union (Set_.to_array a) (Set_.to_array b))

let qcheck_inter_comm =
  Helpers.qtest "intersection commutes"
    QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) -> Set_.to_array (Intersect.inter a b) = Set_.to_array (Intersect.inter b a))

let qcheck_inter_many_fold =
  Helpers.qtest "inter_many = pairwise fold"
    QCheck2.Gen.(list_size (int_range 1 5) gen_set)
    (fun sets ->
      let many = Intersect.inter_many sets in
      let fold =
        List.fold_left (fun acc s -> Intersect.inter acc s) (List.hd sets) (List.tl sets)
      in
      Set_.to_array many = Set_.to_array fold)

let qcheck_count =
  Helpers.qtest "count = |inter|"
    QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) -> Intersect.count a b = Set_.cardinality (Intersect.inter a b))

(* Regression for Set.nth on the dense layout: it used to iterate the whole
   bitset per call; now it must agree with the sparse layout (array index)
   everywhere, including the out-of-bounds contract. *)
let qcheck_nth_layouts_agree =
  Helpers.qtest ~count:400 "nth agrees across layouts" sorted_gen (fun a ->
      QCheck2.assume (Array.length a > 0);
      let sp = Set_.of_sorted_array ~layout:Set_.Sparse a in
      let ds = Set_.of_sorted_array ~layout:Set_.Dense a in
      let n = Array.length a in
      let agree = List.init n (fun i -> Set_.nth ds i = Set_.nth sp i && Set_.nth ds i = a.(i)) in
      let oob =
        match Set_.nth ds n with
        | _ -> false
        | exception Invalid_argument _ -> true
      in
      List.for_all Fun.id agree && oob)

let qcheck_mem_consistent =
  Helpers.qtest "mem agrees with to_array" gen_set (fun s ->
      let arr = Set_.to_array s in
      List.for_all (fun v -> Set_.mem s v = Array.mem v arr) (List.init 301 Fun.id))

let () =
  Alcotest.run "lh_set"
    [
      ( "bitset",
        [
          Alcotest.test_case "add/mem" `Quick test_bitset_add_mem;
          Alcotest.test_case "iter sorted" `Quick test_bitset_iter_sorted;
          Alcotest.test_case "min/max" `Quick test_bitset_min_max;
          Alcotest.test_case "rank" `Quick test_bitset_rank;
          Alcotest.test_case "select" `Quick test_bitset_select;
          Alcotest.test_case "popcount" `Quick test_bitset_popcount;
          qcheck_bitset_inter;
          qcheck_bitset_union;
          qcheck_bitset_rank_all;
          qcheck_bitset_select_inverse;
        ] );
      ( "layout",
        [
          Alcotest.test_case "density rule" `Quick test_layout_choice;
          Alcotest.test_case "forced layout" `Quick test_layout_forced;
          Alcotest.test_case "of_array dedups" `Quick test_of_array_dedups;
          Alcotest.test_case "rank/nth" `Quick test_set_rank_nth;
          Alcotest.test_case "iteri ranks" `Quick test_set_iteri_ranks;
          Alcotest.test_case "filter_range" `Quick test_filter_range;
          Alcotest.test_case "empty" `Quick test_empty_set;
        ] );
      ( "intersect",
        [
          Alcotest.test_case "uint merge" `Quick test_uint_uint_merge;
          Alcotest.test_case "uint gallop" `Quick test_uint_uint_gallop;
          Alcotest.test_case "mixed layouts" `Quick test_inter_mixed_layouts;
          Alcotest.test_case "inter_many ordering" `Quick test_inter_many_order;
          Alcotest.test_case "inter_many single" `Quick test_inter_many_single;
          qcheck_inter_model;
          qcheck_union_model;
          qcheck_inter_comm;
          qcheck_inter_many_fold;
          qcheck_count;
          qcheck_nth_layouts_agree;
          qcheck_mem_consistent;
        ] );
    ]
