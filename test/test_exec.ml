module L = Levelheaded
module Dtype = Lh_storage.Dtype
module Schema = Lh_storage.Schema
module Table = Lh_storage.Table

let eng = Helpers.tpch_engine

(* ---- all benchmark queries against the brute-force oracle ---- *)

let oracle_cases =
  List.map
    (fun (name, sql) ->
      Alcotest.test_case name `Quick (fun () ->
          Helpers.check_against_oracle ~name (Lazy.force eng) sql))
    (Helpers.tpch_queries @ Helpers.la_queries)

let multi_node_cases =
  (* Q5 variants stressing the Yannakakis path: GROUP BY annotations from
     different relations (one in the child bag, one in the root), MIN/MAX
     and COUNT flowing through a materialized child, and an extra
     annotation filter on the child side. *)
  let q5_from_where =
    "from customer, orders, lineitem, supplier, nation, region where c_custkey = o_custkey and \
     l_orderkey = o_orderkey and l_suppkey = s_suppkey and c_nationkey = s_nationkey and \
     s_nationkey = n_nationkey and n_regionkey = r_regionkey and r_name = 'ASIA'"
  in
  [
    ( "q5-two-annotations",
      "select n_name, o_orderpriority, sum(l_extendedprice) s " ^ q5_from_where
      ^ " group by n_name, o_orderpriority" );
    ( "q5-minmax-count",
      "select n_name, min(l_extendedprice) lo, max(l_discount) hi, count(*) c " ^ q5_from_where
      ^ " group by n_name" );
    ( "q5-child-filter",
      "select n_name, sum(l_extendedprice) s " ^ q5_from_where
      ^ " and n_name <> 'CHINA' group by n_name" );
    ( "q5-scalar",
      "select sum(l_extendedprice * (1 - l_discount)) s, avg(l_discount) a " ^ q5_from_where );
  ]
  |> List.map (fun (name, sql) ->
         Alcotest.test_case name `Quick (fun () ->
             Helpers.check_against_oracle ~name (Lazy.force eng) sql))

(* ---- configuration variants must not change results ---- *)

let with_config cfg f =
  let e = Lazy.force eng in
  let saved = L.Engine.config e in
  L.Engine.set_config e cfg;
  Fun.protect ~finally:(fun () -> L.Engine.set_config e saved) (fun () -> f e)

let variant_cases =
  let variants =
    [
      ("no-relaxation", { L.Config.default with relax_materialized_first = false });
      ("no-sorted-emit", { L.Config.default with sorted_emit = false });
      ("no-ghd-heuristics", { L.Config.default with ghd_heuristics = false });
      ("naive-order", { L.Config.default with attr_order = L.Config.Naive });
      ("worst-order", { L.Config.default with attr_order = L.Config.Worst_cost });
      ("no-attribute-elimination", { L.Config.default with attribute_elimination = false; blas_targeting = false });
      ("no-blas", { L.Config.default with blas_targeting = false });
      ("logicblox-like", L.Config.logicblox_like);
      ("parallel-3-domains", { L.Config.default with domains = 3 });
    ]
  in
  List.concat_map
    (fun (vname, cfg) ->
      List.map
        (fun (qname, sql) ->
          Alcotest.test_case (Printf.sprintf "%s/%s" vname qname) `Slow (fun () ->
              let expect = Helpers.oracle_rows (Lazy.force eng) sql in
              with_config cfg (fun e ->
                  Helpers.check_rows_equal (vname ^ "/" ^ qname) expect (Helpers.engine_rows e sql))))
        [ ("q3", Helpers.q3); ("q5", Helpers.q5); ("q9", Helpers.q9); ("smm", Helpers.smm);
          ("dmm", Helpers.dmm); ("q1", Helpers.q1) ])
    variants

(* ---- explain paths ---- *)

let test_paths () =
  let e = Lazy.force eng in
  let path sql = (L.Engine.explain e sql).L.Engine.epath in
  Alcotest.(check bool) "q1 scans" true (path Helpers.q1 = L.Engine.Scan_path);
  Alcotest.(check bool) "q6 scans" true (path Helpers.q6 = L.Engine.Scan_path);
  Alcotest.(check bool) "q5 wcoj" true (path Helpers.q5 = L.Engine.Wcoj_path);
  Alcotest.(check bool) "smm wcoj" true (path Helpers.smm = L.Engine.Wcoj_path);
  Alcotest.(check bool) "dmm blas" true (path Helpers.dmm = L.Engine.Blas_path);
  Alcotest.(check bool) "dmv blas" true (path Helpers.dmv = L.Engine.Blas_path);
  (* with BLAS targeting off, dense queries fall back to the WCOJ *)
  with_config { L.Config.default with blas_targeting = false } (fun e ->
      Alcotest.(check bool) "dmm wcoj when disabled" true
        ((L.Engine.explain e Helpers.dmm).L.Engine.epath = L.Engine.Wcoj_path))

let test_explain_fhw () =
  let e = Lazy.force eng in
  let ex = L.Engine.explain e Helpers.q5 in
  Alcotest.(check (option (float 1e-6))) "q5 fhw" (Some 2.0) ex.L.Engine.efhw;
  Alcotest.(check bool) "plan text mentions hypergraph" true
    (String.length ex.L.Engine.etext > 0)

(* ---- small fixtures: edge cases ---- *)

let fresh_engine () = L.Engine.create ()

let register_matrix e name triplets =
  let rows = Array.of_list (List.map (fun (i, _, _) -> i) triplets) in
  let cols = Array.of_list (List.map (fun (_, j, _) -> j) triplets) in
  let vals = Array.of_list (List.map (fun (_, _, v) -> v) triplets) in
  let t =
    Table.create ~name ~schema:Lh_datagen.Matrices.matrix_schema ~dict:(L.Engine.dict e)
      [| Table.Icol rows; Table.Icol cols; Table.Fcol vals |]
  in
  L.Engine.register e t

let test_empty_input_scalar () =
  let e = fresh_engine () in
  register_matrix e "m" [];
  let t = L.Engine.query e "select sum(m.v) s, count(*) c from m" in
  Alcotest.(check bool) "one row" true (t.Table.nrows = 1);
  Alcotest.(check bool) "sum 0, count 0" true
    (Table.to_rows t = [ [ Dtype.VFloat 0.0; Dtype.VInt 0 ] ])

let test_empty_join_result () =
  let e = fresh_engine () in
  register_matrix e "a" [ (0, 1, 1.0) ];
  register_matrix e "b" [ (2, 3, 1.0) ];
  let t = L.Engine.query e "select a.row, sum(a.v * b.v) s from a, b where a.col = b.row group by a.row" in
  Alcotest.(check int) "no groups" 0 t.Table.nrows

let test_filter_eliminates_all () =
  let e = fresh_engine () in
  register_matrix e "m" [ (0, 0, 1.0); (1, 1, 2.0) ];
  let t = L.Engine.query e "select m.row, sum(m.v) s from m where m.v > 100 group by m.row" in
  Alcotest.(check int) "empty" 0 t.Table.nrows

let test_key_filter () =
  (* filters on key columns are row filters before trie construction *)
  let e = fresh_engine () in
  register_matrix e "m" [ (0, 0, 1.0); (5, 1, 2.0); (9, 2, 4.0) ];
  let t = L.Engine.query e "select m.row, sum(m.v) s from m where m.row >= 5 and m.col < 2 group by m.row" in
  Alcotest.(check bool) "key-filtered" true
    (Table.to_rows t = [ [ Dtype.VInt 5; Dtype.VFloat 2.0 ] ])

let test_min_max_count () =
  let e = fresh_engine () in
  register_matrix e "m" [ (0, 0, 5.0); (0, 1, -3.0); (1, 0, 7.5) ];
  let t = L.Engine.query e "select m.row, min(m.v) lo, max(m.v) hi, count(*) c from m group by m.row" in
  Alcotest.(check bool) "rows" true
    (Table.to_rows t
    = [
        [ Dtype.VInt 0; Dtype.VFloat (-3.0); Dtype.VFloat 5.0; Dtype.VInt 2 ];
        [ Dtype.VInt 1; Dtype.VFloat 7.5; Dtype.VFloat 7.5; Dtype.VInt 1 ];
      ])

let test_group_by_key_join () =
  (* duplicate key tuples: multiplicities must scale the other side's sums *)
  let e = fresh_engine () in
  register_matrix e "a" [ (1, 5, 2.0); (1, 5, 3.0); (2, 5, 4.0) ];
  (* a has two rows with the same (1,5) key: pre-aggregated to 5.0 *)
  register_matrix e "b" [ (5, 9, 10.0) ];
  let t = L.Engine.query e "select a.row, sum(a.v * b.v) s from a, b where a.col = b.row group by a.row" in
  Alcotest.(check bool) "pre-aggregation correct" true
    (Table.to_rows t
    = [ [ Dtype.VInt 1; Dtype.VFloat 50.0 ]; [ Dtype.VInt 2; Dtype.VFloat 40.0 ] ])

let test_count_join_multiplicity () =
  let e = fresh_engine () in
  register_matrix e "a" [ (1, 5, 1.0); (1, 5, 1.0) ];
  register_matrix e "b" [ (5, 1, 1.0); (5, 2, 1.0); (5, 2, 1.0) ];
  (* b keyed (row,col): (5,2) duplicated -> mult 2 *)
  let t = L.Engine.query e "select count(*) c from a, b where a.col = b.row" in
  Alcotest.(check bool) "2 x 3 = 6" true (Table.to_rows t = [ [ Dtype.VInt 6 ] ])

let test_result_reusable () =
  (* the result of one query can be registered and queried again *)
  let e = fresh_engine () in
  register_matrix e "m" [ (0, 0, 1.0); (0, 1, 2.0); (1, 0, 3.0); (1, 1, 4.0) ];
  let sq =
    L.Engine.query e
      "select m1.row, m2.col, sum(m1.v * m2.v) as v from m m1, m m2 where m1.col = m2.row group by m1.row, m2.col"
  in
  let sq = Table.create ~name:"sq" ~schema:sq.Table.schema ~dict:sq.Table.dict sq.Table.cols in
  L.Engine.register e sq;
  let tr = L.Engine.query e "select sum(s.v) t from sq s where s.row = s.col" in
  (* trace(M^2) for M = [[1;2];[3;4]] is 7 + 22 = 29 *)
  Alcotest.(check bool) "trace" true (Table.to_rows tr = [ [ Dtype.VFloat 29.0 ] ])

let test_string_keys_join () =
  let e = fresh_engine () in
  let dict = L.Engine.dict e in
  let s1 =
    Schema.create
      [ ("name", Dtype.String, Schema.Key); ("x", Dtype.Float, Schema.Annotation) ]
  in
  let s2 =
    Schema.create
      [ ("name", Dtype.String, Schema.Key); ("y", Dtype.Float, Schema.Annotation) ]
  in
  L.Engine.register e
    (Table.of_rows ~name:"l" ~schema:s1 ~dict
       [ [ Dtype.VString "a"; Dtype.VFloat 1.0 ]; [ Dtype.VString "b"; Dtype.VFloat 2.0 ] ]);
  L.Engine.register e
    (Table.of_rows ~name:"r" ~schema:s2 ~dict
       [ [ Dtype.VString "b"; Dtype.VFloat 10.0 ]; [ Dtype.VString "c"; Dtype.VFloat 20.0 ] ]);
  let t = L.Engine.query e "select l.name, sum(l.x * r.y) s from l, r where l.name = r.name group by l.name" in
  Alcotest.(check bool) "string join" true
    (Table.to_rows t = [ [ Dtype.VString "b"; Dtype.VFloat 20.0 ] ])

let test_budget_oom_smm () =
  let e = fresh_engine () in
  let dict = L.Engine.dict e in
  let m = Lh_datagen.Matrices.banded ~dict ~name:"big" ~n:2000 ~nnz_per_row:30 () in
  L.Engine.register e m.Lh_datagen.Matrices.table;
  L.Engine.set_config e
    { L.Config.default with budget = Lh_util.Budget.create ~max_live_words:200_000 () };
  match
    L.Engine.query e
      "select m1.row, m2.col, sum(m1.v * m2.v) v from big m1, big m2 where m1.col = m2.row group by m1.row, m2.col"
  with
  | exception Lh_util.Budget.Out_of_memory_budget -> ()
  | _ -> Alcotest.fail "expected oom"

let test_budget_timeout () =
  let e = fresh_engine () in
  let dict = L.Engine.dict e in
  let m = Lh_datagen.Matrices.banded ~dict ~name:"big" ~n:3000 ~nnz_per_row:40 () in
  L.Engine.register e m.Lh_datagen.Matrices.table;
  L.Engine.set_config e
    { L.Config.default with budget = Lh_util.Budget.create ~max_seconds:0.05 () };
  match
    L.Engine.query e
      "select m1.row, m2.col, sum(m1.v * m2.v) v from big m1, big m2 where m1.col = m2.row group by m1.row, m2.col"
  with
  | exception Lh_util.Budget.Timed_out -> ()
  | _ -> Alcotest.fail "expected timeout"

(* ---- randomized join queries vs oracle ---- *)

let random_db_gen =
  QCheck2.Gen.(
    let triplets =
      list_size (int_range 0 40)
        (let* i = int_range 0 5 in
         let* j = int_range 0 5 in
         let* v = int_range (-4) 4 in
         return (i, j, float_of_int v))
    in
    pair triplets triplets)

let qcheck_random_joins =
  Helpers.qtest ~count:120 "random 2-table join = oracle" random_db_gen (fun (ta, tb) ->
      let e = fresh_engine () in
      register_matrix e "a" ta;
      register_matrix e "b" tb;
      let lookup = Helpers.lookup_in e in
      let sql = "select a.row, sum(a.v * b.v) s, count(*) c, min(b.v) lo from a, b where a.col = b.row group by a.row" in
      let expect = Lh_baseline.Oracle.query ~lookup (Lh_sql.Parser.parse sql) in
      let got = Table.to_rows (L.Engine.query e sql) in
      List.length expect = List.length got
      && List.for_all2 (fun er gr -> List.for_all2 Helpers.value_close er gr) expect got)

let qcheck_random_triangle =
  Helpers.qtest ~count:60 "random triangle join = oracle" random_db_gen (fun (ta, tb) ->
      let e = fresh_engine () in
      register_matrix e "a" ta;
      register_matrix e "b" tb;
      register_matrix e "c" (List.map (fun (i, j, v) -> (j, i, v +. 1.0)) ta);
      let lookup = Helpers.lookup_in e in
      (* triangle: a(x,y) b(y,z) c(z,x) -- cyclic, fhw 1.5 *)
      let sql =
        "select sum(a.v * b.v * c.v) s from a, b, c where a.col = b.row and b.col = c.row and c.col = a.row"
      in
      let expect = Lh_baseline.Oracle.query ~lookup (Lh_sql.Parser.parse sql) in
      let got = Table.to_rows (L.Engine.query e sql) in
      List.for_all2 (fun er gr -> List.for_all2 Helpers.value_close er gr) expect got)

(* ---- semiring aggregates ---- *)

let test_semiring_aggregates () =
  let e = fresh_engine () in
  (* 2-hop paths; the (2,3) edge has weight 0 so REACHES over y.v is
     exercised on both outcomes *)
  register_matrix e "g" [ (0, 1, 1.0); (0, 2, 4.0); (1, 2, 1.5); (2, 3, 0.0) ];
  let t =
    L.Engine.query e
      "select x.row, min_plus(x.v + y.v) d, reaches(y.v) r, count(*) c from g x, g y where x.col = y.row group by x.row"
  in
  Alcotest.(check bool) "two-hop rows" true
    (Table.to_rows t
    = [
        [ Dtype.VInt 0; Dtype.VFloat 2.5; Dtype.VInt 1; Dtype.VInt 2 ];
        [ Dtype.VInt 1; Dtype.VFloat 1.5; Dtype.VInt 0; Dtype.VInt 1 ];
      ])

let test_semiring_empty_scalar () =
  (* a scalar fold over an empty input yields the semiring's ⊕-identity *)
  let e = fresh_engine () in
  register_matrix e "m" [];
  let t = L.Engine.query e "select min_plus(m.v) d, reaches(m.v) r from m" in
  Alcotest.(check bool) "identities" true
    (Table.to_rows t = [ [ Dtype.VFloat infinity; Dtype.VInt 0 ] ])

let test_agg_generic_syntax () =
  let e = fresh_engine () in
  register_matrix e "m" [ (0, 0, 5.0); (0, 1, -3.0); (1, 0, 7.5) ];
  let t =
    L.Engine.query e "select m.row, agg('max', m.v) hi, agg('min_plus', m.v) lo from m group by m.row"
  in
  Alcotest.(check bool) "agg('name', e) rows" true
    (Table.to_rows t
    = [
        [ Dtype.VInt 0; Dtype.VFloat 5.0; Dtype.VFloat (-3.0) ];
        [ Dtype.VInt 1; Dtype.VFloat 7.5; Dtype.VFloat 7.5 ];
      ])

let test_custom_semiring_registry () =
  (* (max,+): longest 2-hop path, via a user-registered semiring *)
  (if L.Semiring.find "max_plus" = None then
     L.Semiring.register
       {
         L.Semiring.name = "max_plus";
         zero = neg_infinity;
         one = 0.0;
         add = Float.max;
         mul = ( +. );
         card = L.Semiring.Idem;
         decomp = L.Semiring.Dplus;
       });
  let listed = L.Engine.semirings () in
  Alcotest.(check bool) "registered name listed" true (List.mem "max_plus" listed);
  Alcotest.(check bool) "builtins listed" true
    (List.for_all
       (fun n -> List.mem n listed)
       [ "sum_product"; "min"; "max"; "min_plus"; "bool_or_and" ]);
  let e = fresh_engine () in
  register_matrix e "g" [ (0, 1, 1.0); (0, 2, 4.0); (1, 2, 1.5); (2, 3, 0.5) ];
  let t =
    L.Engine.query e
      "select x.row, agg('max_plus', x.v + y.v) d from g x, g y where x.col = y.row group by x.row"
  in
  Alcotest.(check bool) "longest 2-hop" true
    (Table.to_rows t
    = [ [ Dtype.VInt 0; Dtype.VFloat 4.5 ]; [ Dtype.VInt 1; Dtype.VFloat 2.0 ] ])

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let test_explain_semiring () =
  let e = fresh_engine () in
  register_matrix e "g" [ (0, 1, 1.0); (1, 2, 2.0) ];
  let ex =
    L.Engine.explain e
      "select x.row, min_plus(x.v + y.v) d from g x, g y where x.col = y.row group by x.row"
  in
  Alcotest.(check bool) "plan names the semiring" true (contains ~sub:"min_plus" ex.L.Engine.etext)

let test_result_api () =
  let e = fresh_engine () in
  register_matrix e "m" [ (0, 0, 2.0) ];
  (match L.Engine.query_result e "select sum(m.v) s from m" with
  | Ok t -> Alcotest.(check bool) "ok rows" true (Table.to_rows t = [ [ Dtype.VFloat 2.0 ] ])
  | Error _ -> Alcotest.fail "expected Ok");
  (match L.Engine.query_result e "select sum(nope.v) s from nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on unknown table");
  (match L.Engine.prepare_result e "select sum(m.v) s from m where m.row = $1" with
  | Error _ -> Alcotest.fail "expected Ok prepared stmt"
  | Ok st -> (
      match L.Engine.Stmt.exec_result st [ Dtype.VInt 0 ] with
      | Ok t -> Alcotest.(check bool) "bound rows" true (Table.to_rows t = [ [ Dtype.VFloat 2.0 ] ])
      | Error _ -> Alcotest.fail "expected Ok exec"));
  match L.Engine.prepare_result e "select sum(" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on parse failure"

let test_iterate_sssp () =
  let e = fresh_engine () in
  register_matrix e "g" [ (0, 1, 1.0); (1, 2, 2.0); (0, 2, 5.0); (2, 3, 1.0) ];
  let dist, rounds =
    L.Engine.iterate e ~name:"dist" ~merge:(L.Engine.Accumulate "min_plus")
      ~init:"select g.row, min_plus(0.0) d from g where g.row = 0 group by g.row"
      ~step:"select g.col, min_plus(d.d + g.v) d from dist d, g where d.row = g.row group by g.col"
  in
  Alcotest.(check bool) "distances" true
    (Table.to_rows dist
    = [
        [ Dtype.VInt 0; Dtype.VFloat 0.0 ];
        [ Dtype.VInt 1; Dtype.VFloat 1.0 ];
        [ Dtype.VInt 2; Dtype.VFloat 3.0 ];
        [ Dtype.VInt 3; Dtype.VFloat 4.0 ];
      ]);
  Alcotest.(check int) "rounds to fixpoint" 4 rounds

let test_iterate_reachability () =
  let e = fresh_engine () in
  (* 0 -> 1 -> 2; 4 -> 3 is disconnected from 0 *)
  register_matrix e "g" [ (0, 1, 1.0); (1, 2, 1.0); (4, 3, 1.0) ];
  (* every row in vis is already reached (r = 1), so relaxing only needs
     the edge indicator *)
  let vis, _rounds =
    L.Engine.iterate e ~name:"vis" ~merge:(L.Engine.Accumulate "bool_or_and")
      ~init:"select g.row, reaches(g.v) r from g where g.row = 0 group by g.row"
      ~step:"select g.col, reaches(g.v) r from vis s, g where s.row = g.row group by g.col"
  in
  Alcotest.(check bool) "reachable set" true
    (Table.to_rows vis
    = [
        [ Dtype.VInt 0; Dtype.VInt 1 ];
        [ Dtype.VInt 1; Dtype.VInt 1 ];
        [ Dtype.VInt 2; Dtype.VInt 1 ];
      ])

let qcheck_semiring_joins =
  Helpers.qtest ~count:120 "random semiring join = oracle" random_db_gen (fun (ta, tb) ->
      let e = fresh_engine () in
      register_matrix e "a" ta;
      register_matrix e "b" tb;
      let lookup = Helpers.lookup_in e in
      let sql =
        "select a.row, min_plus(a.v + b.v) d, reaches(b.v) r, agg('max', b.v) hi from a, b where a.col = b.row group by a.row"
      in
      let expect = Lh_baseline.Oracle.query ~lookup (Lh_sql.Parser.parse sql) in
      let got = Table.to_rows (L.Engine.query e sql) in
      List.length expect = List.length got
      && List.for_all2 (fun er gr -> List.for_all2 Helpers.value_close er gr) expect got)

let () =
  Alcotest.run "levelheaded-exec"
    [
      ("oracle", oracle_cases @ multi_node_cases);
      ("variants", variant_cases);
      ( "paths",
        [
          Alcotest.test_case "plan path selection" `Quick test_paths;
          Alcotest.test_case "explain fhw" `Quick test_explain_fhw;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty input scalar" `Quick test_empty_input_scalar;
          Alcotest.test_case "empty join result" `Quick test_empty_join_result;
          Alcotest.test_case "filter eliminates all" `Quick test_filter_eliminates_all;
          Alcotest.test_case "key filters" `Quick test_key_filter;
          Alcotest.test_case "min/max/count" `Quick test_min_max_count;
          Alcotest.test_case "duplicate key pre-aggregation" `Quick test_group_by_key_join;
          Alcotest.test_case "count multiplicity" `Quick test_count_join_multiplicity;
          Alcotest.test_case "result reusable as input" `Quick test_result_reusable;
          Alcotest.test_case "string key join" `Quick test_string_keys_join;
          Alcotest.test_case "budget oom" `Quick test_budget_oom_smm;
          Alcotest.test_case "budget timeout" `Quick test_budget_timeout;
        ] );
      ( "semiring",
        [
          Alcotest.test_case "min_plus/reaches join" `Quick test_semiring_aggregates;
          Alcotest.test_case "empty scalar identities" `Quick test_semiring_empty_scalar;
          Alcotest.test_case "agg('name', e) syntax" `Quick test_agg_generic_syntax;
          Alcotest.test_case "custom registered semiring" `Quick test_custom_semiring_registry;
          Alcotest.test_case "explain shows semiring" `Quick test_explain_semiring;
          Alcotest.test_case "result-first api" `Quick test_result_api;
          Alcotest.test_case "iterate sssp" `Quick test_iterate_sssp;
          Alcotest.test_case "iterate reachability" `Quick test_iterate_reachability;
        ] );
      ("property", [ qcheck_random_joins; qcheck_random_triangle; qcheck_semiring_joins ]);
    ]
