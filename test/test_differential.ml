(* Differential fuzzing, bounded for tier-1: a pinned-seed run asserting
   zero discrepancies across every evaluator, generator validity and
   determinism properties, and a demonstration that an injected
   wrong-answer bug is detected and shrunk to a tiny repro. ci.sh runs
   the full 1000-query sweep via bin/lhfuzz.exe. *)

module L = Levelheaded
module Gen = Lh_qgen.Gen
module Diff = Lh_qgen.Diff
module Shrink = Lh_qgen.Shrink
module Ast = Lh_sql.Ast
module Obs = Lh_obs.Obs

let spec = Gen.default_spec

(* -- the bounded differential run ---------------------------------- *)

let test_no_discrepancies () =
  let before = Obs.snapshot () in
  let summary = Obs.with_enabled true (fun () -> Diff.run ~seed:42 ~count:120 spec) in
  (match summary.Diff.s_discrepancies with
  | [] -> ()
  | d :: _ -> Alcotest.failf "differential run found:\n%s" (Diff.discrepancy_to_string d));
  Alcotest.(check int) "every query ran" 120 summary.Diff.s_count;
  Alcotest.(check int) "path counts add up" 120
    (summary.Diff.s_scan + summary.Diff.s_wcoj + summary.Diff.s_blas);
  (* 120 pinned-seed queries are enough to hit all three paths. *)
  Alcotest.(check bool) "scan path exercised" true (summary.Diff.s_scan > 0);
  Alcotest.(check bool) "wcoj path exercised" true (summary.Diff.s_wcoj > 0);
  Alcotest.(check bool) "blas path exercised" true (summary.Diff.s_blas > 0);
  let nevals = List.length (Diff.evaluator_names ~inject_bug:false) in
  Alcotest.(check int) "all evaluators ran on every query" (120 * nevals)
    summary.Diff.s_evaluations;
  (* fuzz.* counters moved while telemetry was enabled *)
  let moved name =
    let v s = Option.value (List.assoc_opt name s) ~default:0 in
    v (Obs.snapshot ()) - v before > 0
  in
  Alcotest.(check bool) "fuzz.evaluations counter wired" true (moved "fuzz.evaluations");
  Alcotest.(check bool) "fuzz.queries.wcoj counter wired" true (moved "fuzz.queries.wcoj")

(* -- generator properties ------------------------------------------ *)

let profile = lazy (Lh_qgen.Dataset.profile (Lh_qgen.Dataset.build ()))

let test_generator_valid () =
  (* Every generated query must survive the print -> parse round-trip and
     be accepted by the oracle (validity by construction). *)
  let eng = Lh_qgen.Dataset.build () in
  let lookup n = L.Catalog.find_exn (L.Engine.catalog eng) n in
  for index = 0 to 199 do
    let ast, shape = Gen.generate (Lazy.force profile) ~seed:7 ~index spec in
    let sql = Format.asprintf "%a" Ast.pp_query ast in
    let reparsed =
      try Lh_sql.Parser.parse sql
      with e ->
        Alcotest.failf "index %d (%s): %S does not re-parse: %s" index
          (Gen.shape_to_string shape) sql (Printexc.to_string e)
    in
    match Lh_baseline.Oracle.query ~lookup reparsed with
    | _ -> ()
    | exception e ->
        Alcotest.failf "index %d (%s): oracle rejects %S: %s" index (Gen.shape_to_string shape)
          sql (Printexc.to_string e)
  done

let test_generator_deterministic () =
  for index = 0 to 49 do
    let a, _ = Gen.generate (Lazy.force profile) ~seed:11 ~index spec in
    let b, _ = Gen.generate (Lazy.force profile) ~seed:11 ~index spec in
    if a <> b then Alcotest.failf "index %d: same (seed, index) produced different queries" index
  done;
  (* different seeds should not produce an identical stream *)
  let differs =
    List.exists
      (fun index ->
        let a, _ = Gen.generate (Lazy.force profile) ~seed:11 ~index spec in
        let b, _ = Gen.generate (Lazy.force profile) ~seed:12 ~index spec in
        a <> b)
      (List.init 20 Fun.id)
  in
  Alcotest.(check bool) "seeds 11 and 12 diverge" true differs

let test_shape_restriction () =
  List.iter
    (fun shape ->
      let spec = { Gen.shapes = [ shape ]; max_relations = 3; semiring = false } in
      for index = 0 to 19 do
        let _, got = Gen.generate (Lazy.force profile) ~seed:3 ~index spec in
        if got <> shape then
          Alcotest.failf "asked for %s, generated %s" (Gen.shape_to_string shape)
            (Gen.shape_to_string got)
      done)
    Gen.all_shapes

(* -- injected bug: detection and shrinking ------------------------- *)

let test_injected_bug_detected_and_shrunk () =
  let summary = Diff.run ~inject_bug:true ~seed:42 ~count:30 spec in
  let buggy =
    List.filter
      (fun d -> d.Diff.d_evaluator = "buggy-sign-flip")
      summary.Diff.s_discrepancies
  in
  Alcotest.(check bool) "sign-flip bug detected" true (buggy <> []);
  (* every discrepancy must come from the injected evaluator *)
  Alcotest.(check int) "no false positives"
    (List.length summary.Diff.s_discrepancies)
    (List.length buggy);
  (* the shrinker reaches a <= 3-relation repro (acceptance bar); for a
     sign flip a single aggregate over one relation is typical *)
  List.iter
    (fun d ->
      if d.Diff.d_min_relations > 3 then
        Alcotest.failf "repro not minimal (%d relations):\n%s" d.Diff.d_min_relations
          (Diff.discrepancy_to_string d))
    buggy;
  let smallest =
    List.fold_left (fun acc d -> min acc d.Diff.d_min_relations) max_int buggy
  in
  Alcotest.(check int) "some repro reaches a single relation" 1 smallest;
  (* the report carries the replay coordinates and both SQL forms *)
  List.iter
    (fun d ->
      let s = Diff.discrepancy_to_string d in
      let has needle =
        let ln = String.length needle and ls = String.length s in
        let rec go i = i + ln <= ls && (String.sub s i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "replay seed printed" true (has "--seed 42");
      Alcotest.(check bool) "replay index printed" true
        (has (Printf.sprintf "--index %d" d.Diff.d_index));
      Alcotest.(check bool) "minimal sql printed" true (has d.Diff.d_min_sql))
    buggy

let test_shrink_preserves_validity () =
  (* Shrink candidates keep aliases bound and the join graph connected. *)
  for index = 0 to 59 do
    let ast, _ = Gen.generate (Lazy.force profile) ~seed:5 ~index spec in
    List.iter
      (fun (c : Ast.query) ->
        if c.Ast.from = [] then Alcotest.fail "candidate with empty FROM";
        if c.Ast.select = [] then Alcotest.fail "candidate with empty SELECT")
      (Shrink.candidates ast)
  done

let test_replay_pinpoints_query () =
  (* first_index replays exactly the query the report names *)
  let full = Diff.run ~inject_bug:true ~seed:42 ~count:10 spec in
  match full.Diff.s_discrepancies with
  | [] -> Alcotest.fail "expected the injected bug to fire within 10 queries"
  | d :: _ ->
      let replay =
        Diff.run ~inject_bug:true ~seed:42 ~first_index:d.Diff.d_index ~count:1 spec
      in
      let replayed =
        List.filter (fun r -> r.Diff.d_sql = d.Diff.d_sql) replay.Diff.s_discrepancies
      in
      Alcotest.(check bool) "replay reproduces the discrepancy" true (replayed <> [])

let () =
  Alcotest.run "differential"
    [
      ( "diff",
        [
          Alcotest.test_case "120 queries, all evaluators agree" `Quick test_no_discrepancies;
          Alcotest.test_case "injected bug detected and shrunk" `Quick
            test_injected_bug_detected_and_shrunk;
          Alcotest.test_case "replay pinpoints the query" `Quick test_replay_pinpoints_query;
        ] );
      ( "gen",
        [
          Alcotest.test_case "valid by construction (200 queries)" `Quick test_generator_valid;
          Alcotest.test_case "deterministic per (seed, index)" `Quick
            test_generator_deterministic;
          Alcotest.test_case "shape restriction honored" `Quick test_shape_restriction;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "candidates stay structurally valid" `Quick
            test_shrink_preserves_validity;
        ] );
    ]
