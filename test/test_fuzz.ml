(* Robustness fuzzing: arbitrary inputs must produce clean, typed errors —
   never crashes, assertion failures, or wrong-type exceptions. *)

module L = Levelheaded

(* The closed list of exceptions Engine.query documents (engine.mli): the
   typed Engine.Error (parse rejections, unsupported queries, unknown
   names, semantic failures) plus the raw budget violations, which pass
   through so callers can tell OOM from timeout. Anything else —
   Assert_failure, Invalid_argument, Not_found, Stack_overflow, or a
   naked Failure/Parse_error the engine forgot to classify — is a crash
   and fails the property. *)
let acceptable = function
  | L.Engine.Error _ | Lh_util.Budget.Out_of_memory_budget | Lh_util.Budget.Timed_out -> true
  | _ -> false

(* random strings through the whole front end *)
let qcheck_garbage_never_crashes =
  Helpers.qtest ~count:500 "garbage input gives clean errors"
    QCheck2.Gen.(string_size (int_range 0 60))
    (fun input ->
      let e = Lazy.force Helpers.tpch_engine in
      match L.Engine.query e input with
      | _ -> true
      | exception exn -> acceptable exn)

(* structured-ish garbage: random SQL-flavoured token soup. The pool is
   the qgen vocabulary of the engine under test — every keyword plus the
   actual table names, column names and string literals of the loaded
   catalog — so soups frequently resolve names and reach the planner and
   type checker, not just the parser. *)
let sql_words =
  lazy
    (Lh_qgen.Gen.vocabulary (Lh_qgen.Dataset.profile (Lazy.force Helpers.tpch_engine)))

let qcheck_token_soup =
  Helpers.qtest ~count:500 "token soup gives clean errors"
    QCheck2.Gen.(list_size (int_range 1 25) (int_range 0 9999))
    (fun idxs ->
      let words = Lazy.force sql_words in
      let input =
        String.concat " " (List.map (fun i -> words.(i mod Array.length words)) idxs)
      in
      let e = Lazy.force Helpers.tpch_engine in
      match L.Engine.query e input with
      | _ -> true
      | exception exn -> acceptable exn)

(* mutated versions of the real benchmark queries *)
let qcheck_mutated_queries =
  let base = Array.of_list (List.map snd (Helpers.tpch_queries @ Helpers.la_queries)) in
  Helpers.qtest ~count:300 "mutated benchmark queries give clean errors"
    QCheck2.Gen.(
      let* qi = int_range 0 (Array.length base - 1) in
      let* pos = int_range 0 (String.length base.(qi) - 1) in
      let* c = printable in
      let* mode = int_range 0 2 in
      return (qi, pos, c, mode))
    (fun (qi, pos, c, mode) ->
      let sql = base.(qi) in
      let mutated =
        match mode with
        | 0 ->
            (* replace one character *)
            String.mapi (fun i ch -> if i = pos then c else ch) sql
        | 1 ->
            (* delete a slice *)
            String.sub sql 0 pos ^ String.sub sql (min (String.length sql) (pos + 7))
              (max 0 (String.length sql - pos - 7))
        | _ ->
            (* duplicate a slice *)
            String.sub sql 0 pos ^ String.sub sql pos (String.length sql - pos)
            ^ String.sub sql pos (String.length sql - pos)
      in
      let e = Lazy.force Helpers.tpch_engine in
      match L.Engine.query e mutated with
      | _ -> true
      | exception exn -> acceptable exn)

(* malformed CSV never crashes the loader *)
let qcheck_csv_fuzz =
  Helpers.qtest ~count:200 "csv loader gives clean errors"
    QCheck2.Gen.(list_size (int_range 0 8) (string_size (int_range 0 30)))
    (fun lines ->
      let path = Filename.temp_file "lh_fuzz" ".csv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out path in
          List.iter (fun l -> output_string oc (l ^ "\n")) lines;
          close_out oc;
          let schema =
            Lh_storage.Schema.create
              [ ("k", Lh_storage.Dtype.Int, Lh_storage.Schema.Key);
                ("v", Lh_storage.Dtype.Float, Lh_storage.Schema.Annotation) ]
          in
          let dict = Lh_storage.Dict.create () in
          match Lh_storage.Table.load_csv ~name:"fuzz" ~schema ~dict path with
          | _ -> true
          | exception (Failure _ | Invalid_argument _) -> true
          | exception _ -> false))

let () =
  Alcotest.run "levelheaded-fuzz"
    [
      ( "robustness",
        [
          qcheck_garbage_never_crashes;
          qcheck_token_soup;
          qcheck_mutated_queries;
          qcheck_csv_fuzz;
        ] );
    ]
