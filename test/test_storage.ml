module Dict = Lh_storage.Dict
module Date = Lh_storage.Date
module Dtype = Lh_storage.Dtype
module Schema = Lh_storage.Schema
module Table = Lh_storage.Table
module Trie = Lh_storage.Trie

(* ---- dates ---- *)

let test_date_known () =
  Alcotest.(check int) "epoch" 0 (Date.of_ymd 1970 1 1);
  Alcotest.(check int) "next day" 1 (Date.of_ymd 1970 1 2);
  Alcotest.(check string) "roundtrip string" "1994-01-01" (Date.to_string (Date.of_string "1994-01-01"));
  Alcotest.(check int) "year" 1998 (Date.year (Date.of_string "1998-12-01"));
  Alcotest.(check int) "leap day" (Date.of_ymd 2000 3 1 - 1) (Date.of_ymd 2000 2 29)

let test_date_interval_arith () =
  let d = Date.of_string "1998-12-01" in
  Alcotest.(check string) "minus 90" "1998-09-02" (Date.to_string (Date.add_days d (-90)))

let test_date_malformed () =
  List.iter
    (fun s ->
      match Date.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ "nope"; "1994-13-01"; "1994-00-10"; "1994/01/01"; "" ]

let qcheck_date_roundtrip =
  Helpers.qtest ~count:500 "ymd roundtrip"
    QCheck2.Gen.(triple (int_range 1900 2100) (int_range 1 12) (int_range 1 28))
    (fun (y, m, d) -> Date.to_ymd (Date.of_ymd y m d) = (y, m, d))

let qcheck_date_monotone =
  Helpers.qtest "codes are order-preserving"
    QCheck2.Gen.(
      pair
        (triple (int_range 1900 2100) (int_range 1 12) (int_range 1 28))
        (triple (int_range 1900 2100) (int_range 1 12) (int_range 1 28)))
    (fun ((y1, m1, d1), (y2, m2, d2)) ->
      compare (y1, m1, d1) (y2, m2, d2) = compare (Date.of_ymd y1 m1 d1) (Date.of_ymd y2 m2 d2))

(* ---- dict ---- *)

let test_dict_encode_decode () =
  let d = Dict.create () in
  let a = Dict.encode d "alpha" in
  let b = Dict.encode d "beta" in
  Alcotest.(check int) "stable" a (Dict.encode d "alpha");
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check string) "decode" "beta" (Dict.decode d b);
  Alcotest.(check int) "size" 2 (Dict.size d);
  Alcotest.(check (option int)) "find known" (Some a) (Dict.find d "alpha");
  Alcotest.(check (option int)) "find unknown" None (Dict.find d "gamma")

let qcheck_dict_roundtrip =
  Helpers.qtest "encode/decode roundtrip"
    QCheck2.Gen.(list_size (int_range 0 50) (string_size (int_range 0 10)))
    (fun strings ->
      let d = Dict.create () in
      let codes = List.map (Dict.encode d) strings in
      List.for_all2 (fun s c -> String.equal (Dict.decode d c) s) strings codes)

(* ---- schema ---- *)

let test_schema_basics () =
  let s =
    Schema.create
      [ ("id", Dtype.Int, Schema.Key); ("name", Dtype.String, Schema.Annotation);
        ("v", Dtype.Float, Schema.Annotation) ]
  in
  Alcotest.(check int) "ncols" 3 (Schema.ncols s);
  Alcotest.(check (option int)) "find" (Some 1) (Schema.find s "name");
  Alcotest.(check (list int)) "keys" [ 0 ] (Schema.key_indices s);
  Alcotest.(check (list int)) "annotations" [ 1; 2 ] (Schema.annotation_indices s);
  Alcotest.(check bool) "is_key" true (Schema.is_key s 0)

let test_schema_rejects () =
  (match Schema.create [ ("a", Dtype.Int, Schema.Key); ("a", Dtype.Float, Schema.Annotation) ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "duplicate accepted");
  match Schema.create [ ("f", Dtype.Float, Schema.Key) ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "float key accepted"

(* ---- table ---- *)

let mini_schema =
  Schema.create
    [ ("k", Dtype.Int, Schema.Key); ("s", Dtype.String, Schema.Annotation);
      ("d", Dtype.Date, Schema.Annotation); ("x", Dtype.Float, Schema.Annotation) ]

let mini_rows =
  [
    [ Dtype.VInt 1; Dtype.VString "a"; Dtype.VDate (Date.of_string "2001-05-05"); Dtype.VFloat 1.5 ];
    [ Dtype.VInt 2; Dtype.VString "b"; Dtype.VDate (Date.of_string "1999-01-31"); Dtype.VFloat (-2.0) ];
  ]

let test_table_of_rows () =
  let dict = Dict.create () in
  let t = Table.of_rows ~name:"mini" ~schema:mini_schema ~dict mini_rows in
  Alcotest.(check int) "nrows" 2 t.Table.nrows;
  Alcotest.(check bool) "roundtrip" true (Table.to_rows t = mini_rows);
  Alcotest.(check (float 0.0)) "number" (-2.0) (Table.number t 3 1);
  Alcotest.(check int) "code of string" (Dict.encode dict "a") (Table.code t 1 0)

let test_table_csv_roundtrip () =
  let dict = Dict.create () in
  let t = Table.of_rows ~name:"mini" ~schema:mini_schema ~dict mini_rows in
  let path = Filename.temp_file "lh_table" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lh_util.Csv.write_file path
        (List.map (List.map Dtype.value_to_string) (Table.to_rows t));
      let t2 = Table.load_csv ~name:"mini2" ~schema:mini_schema ~dict path in
      Alcotest.(check bool) "same rows" true (Table.to_rows t2 = mini_rows))

let test_table_encode_const () =
  let dict = Dict.create () in
  let t = Table.of_rows ~name:"mini" ~schema:mini_schema ~dict mini_rows in
  Alcotest.(check (option int)) "known string" (Some (Dict.encode dict "a"))
    (Table.encode_const t 1 (Dtype.VString "a"));
  Alcotest.(check (option int)) "unknown string" None (Table.encode_const t 1 (Dtype.VString "zz"));
  Alcotest.(check (option int)) "date" (Some (Date.of_string "1999-01-31"))
    (Table.encode_const t 2 (Dtype.VString "1999-01-31"))

let test_table_validation () =
  let dict = Dict.create () in
  (match
     Table.create ~name:"bad" ~schema:mini_schema ~dict
       [| Table.Icol [| 1 |]; Table.Icol [| 0 |]; Table.Icol [| 0 |] |]
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "column count accepted");
  match
    Table.create ~name:"bad" ~schema:mini_schema ~dict
      [| Table.Icol [| -1 |]; Table.Icol [| 0 |]; Table.Icol [| 0 |]; Table.Fcol [| 0.0 |] |]
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "negative key accepted"

(* ---- trie ---- *)

(* Model: a trie built over (keys, rows) must enumerate exactly the sorted
   distinct key tuples, with multiplicities summing the row count. *)
let qcheck_trie_vs_model =
  let gen =
    QCheck2.Gen.(
      let* nlevels = int_range 1 3 in
      let* nrows = int_range 0 60 in
      let* data = list_repeat (nlevels * nrows) (int_range 0 8) in
      return (nlevels, nrows, Array.of_list data))
  in
  Helpers.qtest ~count:300 "trie enumerates sorted distinct tuples" gen
    (fun (nlevels, nrows, data) ->
      let keys = Array.init nlevels (fun l -> Array.init nrows (fun r -> data.((l * nrows) + r))) in
      let rows = Array.init nrows Fun.id in
      let trie = Trie.build ~keys ~rows () in
      let expected =
        List.init nrows (fun r -> List.init nlevels (fun l -> keys.(l).(r)))
        |> List.sort_uniq compare
      in
      let got = ref [] in
      Trie.iter_tuples trie (fun tup _ -> got := Array.to_list tup :: !got);
      let got = List.rev !got in
      let mult_total = ref 0.0 in
      Trie.iter_tuples trie (fun _ g -> mult_total := !mult_total +. g.Trie.mult);
      got = expected
      && Trie.cardinality trie = List.length expected
      && int_of_float !mult_total = nrows)

let test_trie_aggregation () =
  (* keys: one level; rows share keys; Sum/Min/Max pre-aggregation *)
  let keys = [| [| 1; 2; 1; 2; 1 |] |] in
  let vals = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  let trie =
    Trie.build ~keys ~rows:[| 0; 1; 2; 3; 4 |]
      ~aggs:
        [|
          (( +. ), fun r -> vals.(r));
          (Float.min, fun r -> vals.(r));
          (Float.max, fun r -> vals.(r));
        |]
      ()
  in
  let got = ref [] in
  Trie.iter_tuples trie (fun tup g -> got := (tup.(0), g.Trie.vec, g.Trie.mult) :: !got);
  match List.rev !got with
  | [ (1, v1, m1); (2, v2, m2) ] ->
      Alcotest.(check (float 1e-9)) "sum k=1" 90.0 v1.(0);
      Alcotest.(check (float 1e-9)) "min k=1" 10.0 v1.(1);
      Alcotest.(check (float 1e-9)) "max k=1" 50.0 v1.(2);
      Alcotest.(check (float 1e-9)) "mult k=1" 3.0 m1;
      Alcotest.(check (float 1e-9)) "sum k=2" 60.0 v2.(0);
      Alcotest.(check (float 1e-9)) "mult k=2" 2.0 m2
  | other -> Alcotest.failf "unexpected leaves: %d" (List.length other)

let test_trie_group_codes () =
  (* duplicate keys with different group codes must stay separate *)
  let keys = [| [| 7; 7; 7 |] |] in
  let codes = [| [| 100; 200; 100 |] |] in
  let vals = [| 1.0; 2.0; 4.0 |] in
  let trie =
    Trie.build ~keys ~rows:[| 0; 1; 2 |] ~group_cols:codes
      ~aggs:[| (( +. ), fun r -> vals.(r)) |]
      ()
  in
  let got = ref [] in
  Trie.iter_tuples trie (fun _ g -> got := (g.Trie.codes.(0), g.Trie.vec.(0)) :: !got);
  Alcotest.(check (list (pair int (float 1e-9))))
    "two groups" [ (100, 5.0); (200, 2.0) ]
    (List.sort compare !got)

let test_trie_lookup () =
  let keys = [| [| 1; 1; 2 |]; [| 5; 6; 5 |] |] in
  let trie = Trie.build ~keys ~rows:[| 0; 1; 2 |] () in
  (match Trie.lookup trie [| 1 |] with
  | Some node -> Alcotest.(check (array int)) "children of 1" [| 5; 6 |] (Lh_set.Set.to_array node.Trie.set)
  | None -> Alcotest.fail "prefix 1 missing");
  Alcotest.(check bool) "missing prefix" true (Trie.lookup trie [| 9 |] = None);
  Alcotest.(check (array int)) "first level" [| 1; 2 |] (Lh_set.Set.to_array (Trie.first_level trie))

let test_trie_level_max () =
  let keys = [| [| 4; 9 |]; [| 100; 3 |] |] in
  let trie = Trie.build ~keys ~rows:[| 0; 1 |] () in
  Alcotest.(check (array int)) "level maxima" [| 9; 100 |] trie.Trie.level_max

let test_trie_empty () =
  let trie = Trie.build ~keys:[| [||] |] ~rows:[||] () in
  Alcotest.(check int) "cardinality" 0 (Trie.cardinality trie);
  let visited = ref 0 in
  Trie.iter_tuples trie (fun _ _ -> incr visited);
  Alcotest.(check int) "no tuples" 0 !visited

let test_trie_mults_override () =
  let keys = [| [| 1; 1 |] |] in
  let trie = Trie.build ~keys ~rows:[| 0; 1 |] ~mults:(fun r -> float_of_int (r + 1) *. 2.0) () in
  Trie.iter_tuples trie (fun _ g -> Alcotest.(check (float 1e-9)) "summed mults" 6.0 g.Trie.mult)

(* Regression: a malformed row aborts the load as a typed
   [Engine.Error Semantic] carrying the 1-based file line number (empty
   lines are skipped but still counted), the catalog is left without the
   table, and the sequential and parallel ingest paths agree. *)
let test_csv_malformed_line () =
  let module L = Levelheaded in
  let schema =
    Schema.create [ ("k", Dtype.Int, Schema.Key); ("v", Dtype.Float, Schema.Annotation) ]
  in
  let write lines =
    let path = Filename.temp_file "lh_badcsv" ".csv" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    path
  in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let check name ~domains path expect =
    let eng = L.Engine.create ~config:{ L.Config.default with L.Config.domains } () in
    (match L.Engine.load_csv eng ~name:"bad" ~schema path with
    | _ -> Alcotest.failf "%s: malformed load succeeded" name
    | exception L.Engine.Error (L.Engine.Error.Semantic m) ->
        if not (contains ~sub:expect m) then
          Alcotest.failf "%s: error %S does not name %S" name m expect
    | exception e -> Alcotest.failf "%s: untyped exception %s" name (Printexc.to_string e));
    Alcotest.(check bool)
      (name ^ ": table not registered")
      true
      (L.Catalog.find (L.Engine.catalog eng) "bad" = None)
  in
  let bad_cell = write [ "1,1.5"; "2,2.5"; "3,oops"; "4,4.5" ] in
  let short_row = write [ "1,1.5"; ""; "7"; "2,2.5" ] in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove bad_cell;
      Sys.remove short_row)
    (fun () ->
      check "sequential bad cell" ~domains:1 bad_cell "line 3";
      check "parallel bad cell" ~domains:4 bad_cell "line 3";
      check "sequential short row" ~domains:1 short_row "line 3";
      check "parallel short row" ~domains:4 short_row "line 3")

let () =
  Alcotest.run "lh_storage"
    [
      ( "date",
        [
          Alcotest.test_case "known values" `Quick test_date_known;
          Alcotest.test_case "interval arithmetic" `Quick test_date_interval_arith;
          Alcotest.test_case "malformed" `Quick test_date_malformed;
          qcheck_date_roundtrip;
          qcheck_date_monotone;
        ] );
      ( "dict",
        [ Alcotest.test_case "encode/decode" `Quick test_dict_encode_decode; qcheck_dict_roundtrip ]
      );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "rejects invalid" `Quick test_schema_rejects;
        ] );
      ( "table",
        [
          Alcotest.test_case "of_rows" `Quick test_table_of_rows;
          Alcotest.test_case "csv roundtrip" `Quick test_table_csv_roundtrip;
          Alcotest.test_case "csv malformed row line numbers" `Quick test_csv_malformed_line;
          Alcotest.test_case "encode_const" `Quick test_table_encode_const;
          Alcotest.test_case "validation" `Quick test_table_validation;
        ] );
      ( "trie",
        [
          qcheck_trie_vs_model;
          Alcotest.test_case "leaf aggregation" `Quick test_trie_aggregation;
          Alcotest.test_case "group codes split leaves" `Quick test_trie_group_codes;
          Alcotest.test_case "lookup" `Quick test_trie_lookup;
          Alcotest.test_case "level_max" `Quick test_trie_level_max;
          Alcotest.test_case "empty" `Quick test_trie_empty;
          Alcotest.test_case "mults override" `Quick test_trie_mults_override;
        ] );
    ]
