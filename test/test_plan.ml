module L = Levelheaded
module AO = L.Attr_order

let eng = Helpers.tpch_engine

let translate ?(attribute_elimination = true) sql =
  L.Logical.translate
    (L.Engine.catalog (Lazy.force eng))
    ~attribute_elimination (Lh_sql.Parser.parse sql)

(* ---- SQL -> hypergraph (rules of §IV-A) ---- *)

let test_q5_hypergraph () =
  let lq = translate Helpers.q5 in
  Alcotest.(check int) "5 vertices (rule 1)" 5 (Array.length lq.L.Logical.vertices);
  Alcotest.(check int) "6 edges" 6 (Array.length lq.L.Logical.edges);
  let names = Array.to_list lq.L.Logical.vertices |> List.map (fun v -> v.L.Logical.vname) in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "custkey"; "orderkey"; "suppkey"; "nationkey"; "regionkey" ];
  (* region carries the equality selection (rule 4 metadata + weights) *)
  let region =
    Array.to_list lq.L.Logical.edges
    |> List.find (fun (e : L.Logical.edge) -> e.L.Logical.alias = "region")
  in
  Alcotest.(check bool) "region eq-selected" true region.L.Logical.eq_selected;
  (* lineitem's annotation expression becomes its slot (rule 3) *)
  Alcotest.(check int) "single slot" 1 (Array.length lq.L.Logical.slots);
  match lq.L.Logical.slots.(0).L.Logical.owners with
  | [ ("lineitem", _) ] -> ()
  | _ -> Alcotest.fail "lineitem should own the revenue slot"

let test_q9_decomposition () =
  let lq = translate Helpers.q9 in
  (* l_e*(1-l_d) - ps_cost*l_qty spans two relations: two slots. *)
  Alcotest.(check int) "two slots" 2 (Array.length lq.L.Logical.slots);
  let owners j =
    List.map fst lq.L.Logical.slots.(j).L.Logical.owners |> List.sort compare
  in
  Alcotest.(check (list string)) "term 1" [ "lineitem" ] (owners 0);
  Alcotest.(check (list string)) "term 2" [ "lineitem"; "partsupp" ] (owners 1)

let test_q8_case_indicator () =
  let lq = translate Helpers.q8 in
  (* brazil term: indicator(n2) * volume(lineitem); total term: lineitem *)
  Alcotest.(check int) "two slots" 2 (Array.length lq.L.Logical.slots);
  let slot0 = lq.L.Logical.slots.(0) in
  Alcotest.(check (list string)) "indicator term owners" [ "lineitem"; "n2" ]
    (List.map fst slot0.L.Logical.owners |> List.sort compare)

let test_q1_scan_shape () =
  let lq = translate Helpers.q1 in
  Alcotest.(check int) "no vertices" 0 (Array.length lq.L.Logical.vertices);
  Alcotest.(check int) "group by two annotations" 2 (Array.length lq.L.Logical.group_by);
  (* 4 SUMs + 3 AVG sums + 1 shared count = 8 slots *)
  Alcotest.(check int) "slots" 8 (Array.length lq.L.Logical.slots)

let test_count_slot_shared () =
  let lq = translate "select avg(l_quantity) a, count(*) c, avg(l_discount) b from lineitem" in
  (* avg sums: 2; one count slot shared by COUNT and both AVGs *)
  Alcotest.(check int) "three slots" 3 (Array.length lq.L.Logical.slots)

let test_attr_elim_off () =
  let on = translate Helpers.q1 in
  let off = translate ~attribute_elimination:false Helpers.q1 in
  Alcotest.(check int) "AE on: no vertices" 0 (Array.length on.L.Logical.vertices);
  Alcotest.(check int) "AE off: all lineitem keys become vertices" 4
    (Array.length off.L.Logical.vertices);
  let dead =
    Array.to_list off.L.Logical.slots |> List.filter (fun s -> s.L.Logical.dead) |> List.length
  in
  Alcotest.(check bool) "dead slots present" true (dead > 0)

let test_unsupported_queries () =
  List.iter
    (fun sql ->
      match translate sql with
      | exception L.Logical.Unsupported_query _ -> ()
      | exception L.Logical.Unknown_table _ -> ()
      | exception L.Logical.Unknown_column _ -> ()
      | _ -> Alcotest.failf "accepted %S" sql)
    [
      (* Cartesian product *)
      "select count(*) c from customer, orders";
      (* join on an annotation *)
      "select count(*) c from customer, nation where c_name = n_name";
      (* non-equi join *)
      "select count(*) c from customer, orders where c_custkey < o_custkey";
      (* cross-relation disjunction *)
      "select count(*) c from customer, orders where c_custkey = o_custkey or c_custkey = 1";
      (* aggregated key *)
      "select sum(c_custkey) s from customer";
      (* ungrouped plain output *)
      "select c_name from customer";
      (* unknown table *)
      "select count(*) c from nosuch";
      (* ambiguous column *)
      "select count(*) c from nation n1, nation n2 where n1.n_nationkey = n2.n_nationkey and n_name = 'x'";
    ]

(* ---- GHDs ---- *)

let test_q5_ghd () =
  let lq = translate Helpers.q5 in
  let ghd = L.Ghd.plan lq ~heuristics:true in
  Alcotest.(check (float 1e-6)) "fhw 2 (4-cycle)" 2.0 ghd.L.Ghd.fhw;
  Alcotest.(check int) "two bags" 2 (List.length (L.Ghd.nodes ghd));
  (* heuristic 4: the selected region sits in the deeper bag *)
  let root = ghd.L.Ghd.root in
  let region_edge =
    Array.to_list lq.L.Logical.edges
    |> List.mapi (fun i e -> (i, e))
    |> List.find (fun (_, (e : L.Logical.edge)) -> e.L.Logical.alias = "region")
    |> fst
  in
  Alcotest.(check bool) "region not in root" true (not (List.mem region_edge root.L.Ghd.bag_edges));
  match L.Ghd.validate ~nvertices:(Array.length lq.L.Logical.vertices)
          ~edges:(L.Logical.edge_vertex_list lq) ghd with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_q3_single_node () =
  let lq = translate Helpers.q3 in
  let ghd = L.Ghd.plan lq ~heuristics:true in
  Alcotest.(check (float 1e-6)) "acyclic fhw 1" 1.0 ghd.L.Ghd.fhw;
  Alcotest.(check int) "single bag" 1 (List.length (L.Ghd.nodes ghd))

let test_smm_single_node () =
  let lq = translate Helpers.smm in
  let ghd = L.Ghd.plan lq ~heuristics:true in
  (* both group-by keys must live in the root, forcing one bag of width 2 *)
  Alcotest.(check int) "single bag" 1 (List.length (L.Ghd.nodes ghd));
  Alcotest.(check (float 1e-6)) "fhw 2" 2.0 ghd.L.Ghd.fhw

let test_ghd_candidates_validate () =
  List.iter
    (fun (name, sql) ->
      let lq = translate sql in
      if Array.length lq.L.Logical.vertices > 0 then
        List.iter
          (fun c ->
            match
              L.Ghd.validate ~nvertices:(Array.length lq.L.Logical.vertices)
                ~edges:(L.Logical.edge_vertex_list lq) c
            with
            | Ok () -> ()
            | Error msg -> Alcotest.failf "%s: invalid candidate: %s" name msg)
          (L.Ghd.candidates lq))
    (Helpers.tpch_queries @ Helpers.la_queries)

(* ---- cost-based attribute ordering (§V) ---- *)

(* Example 5.1 from the paper: the TPC-H Q5 node with relations
   o(ok,ck), l(ok,sk), c(ck,nk), s(sk,nk), n(nk) and order
   [orderkey; custkey; nationkey; suppkey] gets icosts [1; 10; 11; 50]. *)
let example_rels =
  let mk vs card sel = { AO.rvertices = vs; rcard = card; reselected = sel; rdense = false } in
  (* vertices: 0=orderkey 1=custkey 2=nationkey 3=suppkey *)
  [
    mk [ 0; 1 ] 26_000 false (* orders *);
    mk [ 0; 3 ] 100_000 false (* lineitem *);
    mk [ 1; 2 ] 3_000 false (* customer *);
    mk [ 3; 2 ] 1_000 false (* supplier *);
    mk [ 2 ] 25 false (* nation (restricted to this node) *);
  ]

let test_icost_example_5_1 () =
  let order = [ 0; 1; 2; 3 ] in
  let icosts = List.mapi (fun pos _ -> AO.vertex_icost ~rels:example_rels ~order pos) order in
  Alcotest.(check (list (float 1e-9))) "icosts" [ 1.0; 10.0; 11.0; 50.0 ] icosts

let test_icost_pairs () =
  Alcotest.(check int) "bb" 1 (AO.icost_pair AO.Guess_bs AO.Guess_bs);
  Alcotest.(check int) "bu" 10 (AO.icost_pair AO.Guess_bs AO.Guess_uint);
  Alcotest.(check int) "uu" 50 (AO.icost_pair AO.Guess_uint AO.Guess_uint)

let test_icost_dense_zero () =
  let rels =
    [
      { AO.rvertices = [ 0; 1 ]; rcard = 100; reselected = false; rdense = true };
      { AO.rvertices = [ 1; 2 ]; rcard = 100; reselected = false; rdense = true };
    ]
  in
  List.iter
    (fun pos ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "pos %d" pos)
        0.0
        (AO.vertex_icost ~rels ~order:[ 0; 1; 2 ] pos))
    [ 0; 1; 2 ]

(* Example 5.3: scores and min/max weights. *)
let test_weights_example_5_3 () =
  let mk vs card sel = { AO.rvertices = vs; rcard = card; reselected = sel; rdense = false } in
  (* 0=orderkey 1=custkey 2=nationkey 3=suppkey 4=regionkey *)
  let rels =
    [
      mk [ 0; 3 ] 100_000 false (* lineitem: score 100 *);
      mk [ 0; 1 ] 26_000 false (* orders: 26 *);
      mk [ 1; 2 ] 3_000 false (* customer: 3 *);
      mk [ 3; 2 ] 1_000 false (* supplier: 1 *);
      mk [ 2; 4 ] 25 false (* nation: 1 *);
      mk [ 4 ] 5 true (* region: 1, equality-selected *);
    ]
  in
  let w = AO.vertex_weights rels in
  Alcotest.(check (float 1e-9)) "orderkey = min(26,100)" 26.0 (w 0);
  Alcotest.(check (float 1e-9)) "custkey = min(3,26)" 3.0 (w 1);
  Alcotest.(check (float 1e-9)) "nationkey = min(1,1,3)" 1.0 (w 2);
  Alcotest.(check (float 1e-9)) "suppkey = min(1,100)" 1.0 (w 3);
  Alcotest.(check (float 1e-9)) "regionkey = max(1,1)" 1.0 (w 4)

let test_valid_orders_materialized_first () =
  let orders = AO.valid_orders ~relax:false ~vertices:[ 0; 1; 2 ] ~materialized:[ 0; 2 ] ~global_order:[] in
  Alcotest.(check int) "two valid orders" 2 (List.length orders);
  List.iter
    (fun (o, relaxed) ->
      Alcotest.(check bool) "not relaxed" false relaxed;
      match o with
      | [ a; b; c ] ->
          Alcotest.(check bool) "last projected" true (c = 1);
          Alcotest.(check bool) "mats first" true (List.sort compare [ a; b ] = [ 0; 2 ])
      | _ -> Alcotest.fail "length")
    orders

let test_valid_orders_relaxed () =
  let orders = AO.valid_orders ~relax:true ~vertices:[ 0; 1; 2 ] ~materialized:[ 0; 2 ] ~global_order:[] in
  (* base [0;2;1], [2;0;1] plus swapped [0;1;2], [2;1;0] *)
  Alcotest.(check int) "four candidates" 4 (List.length orders);
  Alcotest.(check bool) "swap flagged" true
    (List.mem ([ 0; 1; 2 ], true) orders && List.mem ([ 2; 1; 0 ], true) orders)

let test_global_order_respected () =
  let orders =
    AO.valid_orders ~relax:false ~vertices:[ 0; 1 ] ~materialized:[ 0; 1 ] ~global_order:[ 1; 0 ]
  in
  Alcotest.(check (list (pair (list int) bool))) "only [1;0]" [ ([ 1; 0 ], false) ] orders

(* The SMM shape: m1(i,k), m2(k,j), materialized {i, j}.  The cost-based
   optimizer must pick the relaxed [i; k; j] order (Example 5.2 / Fig 5b). *)
let test_smm_relaxed_choice () =
  let rels =
    [
      { AO.rvertices = [ 0; 1 ]; rcard = 1000; reselected = false; rdense = false };
      { AO.rvertices = [ 1; 2 ]; rcard = 1000; reselected = false; rdense = false };
    ]
  in
  let weights = AO.vertex_weights rels in
  let res =
    AO.choose ~policy:L.Config.Cost_based ~relax:true ~rels ~weights ~vertices:[ 0; 1; 2 ]
      ~materialized:[ 0; 2 ] ~global_order:[]
  in
  Alcotest.(check (list int)) "order [i;k;j]" [ 0; 1; 2 ] res.AO.order;
  Alcotest.(check bool) "relaxed" true res.AO.relaxed;
  (* and it must be cheaper than the unrelaxed [i;j;k] *)
  let base = AO.cost ~rels ~weights [ 0; 2; 1 ] in
  Alcotest.(check bool) "cheaper than [i;j;k]" true (res.AO.ocost < base)

let test_worst_cost_policy () =
  let rels = example_rels in
  let weights = AO.vertex_weights rels in
  let best =
    AO.choose ~policy:L.Config.Cost_based ~relax:false ~rels ~weights ~vertices:[ 0; 1; 2; 3 ]
      ~materialized:[] ~global_order:[]
  in
  let worst =
    AO.choose ~policy:L.Config.Worst_cost ~relax:false ~rels ~weights ~vertices:[ 0; 1; 2; 3 ]
      ~materialized:[] ~global_order:[]
  in
  Alcotest.(check bool) "worst >= best" true (worst.AO.ocost >= best.AO.ocost);
  Alcotest.(check bool) "strictly worse here" true (worst.AO.ocost > best.AO.ocost)

let qcheck_choose_is_min =
  let gen =
    QCheck2.Gen.(
      let* nverts = int_range 2 4 in
      let* nrels = int_range 1 4 in
      let* rels =
        list_repeat nrels
          (let* vs = list_size (int_range 1 nverts) (int_range 0 (nverts - 1)) in
           let* card = int_range 1 1000 in
           let* sel = bool in
           return { AO.rvertices = List.sort_uniq compare vs; rcard = card; reselected = sel; rdense = false })
      in
      let* nmat = int_range 0 nverts in
      return (nverts, rels, List.init nmat Fun.id))
  in
  Helpers.qtest ~count:150 "cost-based choice is the minimum over candidates" gen
    (fun (nverts, rels, materialized) ->
      let vertices = List.init nverts Fun.id in
      (* every vertex must be covered by some relation for icost to be sane *)
      let weights = AO.vertex_weights rels in
      let res =
        AO.choose ~policy:L.Config.Cost_based ~relax:true ~rels ~weights ~vertices ~materialized
          ~global_order:[]
      in
      let all = AO.valid_orders ~relax:true ~vertices ~materialized ~global_order:[] in
      List.for_all (fun (o, _) -> res.AO.ocost <= AO.cost ~rels ~weights o +. 1e-9) all)

let () =
  Alcotest.run "levelheaded-plan"
    [
      ( "translate",
        [
          Alcotest.test_case "Q5 hypergraph (Ex 4.1)" `Quick test_q5_hypergraph;
          Alcotest.test_case "Q9 term decomposition" `Quick test_q9_decomposition;
          Alcotest.test_case "Q8 CASE indicator" `Quick test_q8_case_indicator;
          Alcotest.test_case "Q1 scan shape" `Quick test_q1_scan_shape;
          Alcotest.test_case "count slot shared" `Quick test_count_slot_shared;
          Alcotest.test_case "attribute elimination off" `Quick test_attr_elim_off;
          Alcotest.test_case "unsupported queries rejected" `Quick test_unsupported_queries;
        ] );
      ( "ghd",
        [
          Alcotest.test_case "Q5: fhw 2, selection deep" `Quick test_q5_ghd;
          Alcotest.test_case "Q3: single node" `Quick test_q3_single_node;
          Alcotest.test_case "SMM: single node, fhw 2" `Quick test_smm_single_node;
          Alcotest.test_case "all candidates validate" `Quick test_ghd_candidates_validate;
        ] );
      ( "attr-order",
        [
          Alcotest.test_case "icost pairs (Fig 5a)" `Quick test_icost_pairs;
          Alcotest.test_case "icost Example 5.1" `Quick test_icost_example_5_1;
          Alcotest.test_case "dense relations cost 0" `Quick test_icost_dense_zero;
          Alcotest.test_case "weights Example 5.3" `Quick test_weights_example_5_3;
          Alcotest.test_case "materialized first" `Quick test_valid_orders_materialized_first;
          Alcotest.test_case "relaxation candidates" `Quick test_valid_orders_relaxed;
          Alcotest.test_case "global order respected" `Quick test_global_order_respected;
          Alcotest.test_case "SMM picks relaxed [i;k;j]" `Quick test_smm_relaxed_choice;
          Alcotest.test_case "worst-cost policy" `Quick test_worst_cost_policy;
          qcheck_choose_is_min;
        ] );
    ]
