(* Parallel-vs-sequential differential suite.

   The contract under test: every parallel layer — the shared domain pool,
   the Parfor chunking, the partitioned trie build, the chunked CSV ingest,
   the row-blocked BLAS kernels and the executor's outer-loop parallelism —
   computes the same answer as its sequential twin. Storage and BLAS layers
   promise bit-identical results for any domain count; WCOJ results with
   float annotations may differ only by cross-chunk accumulation order, so
   engine-level comparisons go through [Helpers.value_close]. *)

module L = Levelheaded
module Parfor = Lh_util.Parfor
module Pool = Lh_util.Pool
module Table = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype
module Trie = Lh_storage.Trie
module Dict = Lh_storage.Dict
module Dense = Lh_blas.Dense
module Csr = Lh_blas.Csr

(* ---- chunk_bounds: exhaustive partition property ---- *)

let test_chunk_bounds_exhaustive () =
  for n = 0 to 64 do
    for chunks = 1 to 64 do
      let prev = ref 0 in
      let smallest = ref max_int and largest = ref 0 in
      for k = 0 to chunks - 1 do
        let lo, hi = Parfor.chunk_bounds ~chunks ~n k in
        if lo <> !prev then
          Alcotest.failf "chunk_bounds ~chunks:%d ~n:%d %d: lo=%d, want %d" chunks n k lo !prev;
        if hi < lo then
          Alcotest.failf "chunk_bounds ~chunks:%d ~n:%d %d: hi=%d < lo=%d" chunks n k hi lo;
        smallest := min !smallest (hi - lo);
        largest := max !largest (hi - lo);
        prev := hi
      done;
      if !prev <> n then
        Alcotest.failf "chunk_bounds ~chunks:%d ~n:%d: covers [0,%d), want [0,%d)" chunks n !prev n;
      if !largest - !smallest > 1 then
        Alcotest.failf "chunk_bounds ~chunks:%d ~n:%d: sizes differ by %d" chunks n
          (!largest - !smallest)
    done
  done

let test_domain_count_policy () =
  Alcotest.(check bool) "recommended >= 1" true (Parfor.recommended_domains () >= 1);
  Alcotest.(check bool) "default >= 1" true (Parfor.default_domains () >= 1);
  match Parfor.env_domains () with
  | Some n ->
      Alcotest.(check int) "LH_DOMAINS pins default" n (Parfor.default_domains ());
      Alcotest.(check int) "LH_DOMAINS pins recommended" n (Parfor.recommended_domains ())
  | None -> Alcotest.(check int) "default is sequential" 1 (Parfor.default_domains ())

(* ---- pool: reuse, shutdown, nested rejection ---- *)

let test_pool_reuse () =
  let pool = Pool.create ~workers:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "workers spawned" 2 (Pool.workers pool);
      let sum_below n chunks =
        let acc = Array.make chunks 0 in
        Pool.run pool ~chunks (fun k ->
            let lo, hi = Parfor.chunk_bounds ~chunks ~n k in
            for i = lo to hi - 1 do
              acc.(k) <- acc.(k) + i
            done);
        Array.fold_left ( + ) 0 acc
      in
      Alcotest.(check int) "first task" (100 * 99 / 2) (sum_below 100 4);
      Alcotest.(check int) "second task on same pool" (50 * 49 / 2) (sum_below 50 3);
      Alcotest.(check int) "workers still parked" 2 (Pool.workers pool))

let test_pool_nested_busy () =
  let pool = Pool.create ~workers:1 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let rejections = Atomic.make 0 in
      Pool.run pool ~chunks:3 (fun _ ->
          match Pool.run pool ~chunks:1 (fun _ -> ()) with
          | () -> ()
          | exception Pool.Busy -> Atomic.incr rejections);
      Alcotest.(check int) "every nested run rejected" 3 (Atomic.get rejections))

let test_pool_shutdown_usable () =
  let pool = Pool.create ~workers:2 in
  Pool.shutdown pool;
  Alcotest.(check int) "workers joined" 0 (Pool.workers pool);
  let hits = Array.make 5 0 in
  Pool.run pool ~chunks:5 (fun k -> hits.(k) <- hits.(k) + 1);
  Alcotest.(check (array int)) "caller-only execution after shutdown" (Array.make 5 1) hits;
  Pool.shutdown pool (* idempotent *)

let test_pool_exception_propagates () =
  let pool = Pool.create ~workers:1 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      match Pool.run pool ~chunks:4 (fun k -> if k = 2 then failwith "chunk 2") with
      | () -> Alcotest.fail "expected the chunk exception to re-raise"
      | exception Failure msg ->
          Alcotest.(check string) "first failure re-raised" "chunk 2" msg;
          (* the pool must have drained and stayed usable *)
          Pool.run pool ~chunks:2 (fun _ -> ()))

let test_pool_fail_fast () =
  (* workers:0 — the submitter drains every chunk itself, sequentially, so
     the skip-after-failure accounting is deterministic: chunk 0 fails and
     the remaining 99 bodies must be skipped, not run. *)
  let pool = Pool.create ~workers:0 in
  let executed = ref 0 in
  (match
     Pool.run pool ~chunks:100 (fun k ->
         incr executed;
         if k = 0 then failwith "boom")
   with
  | () -> Alcotest.fail "expected the failure to re-raise"
  | exception Failure msg -> Alcotest.(check string) "first failure re-raised" "boom" msg);
  Alcotest.(check int) "bodies after the failure are skipped" 1 !executed;
  (* the failure is per-task state: the pool is immediately reusable *)
  let ok = ref 0 in
  Pool.run pool ~chunks:10 (fun _ -> incr ok);
  Alcotest.(check int) "pool reusable after fail-fast" 10 !ok

let test_pool_reuse_after_worker_failure () =
  let pool = Pool.create ~workers:3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      for round = 1 to 5 do
        (match
           Pool.run pool ~chunks:16 (fun k ->
               if k land 3 = round land 3 then failwith "injected")
         with
        | () -> Alcotest.fail "expected a failure"
        | exception Failure _ -> ());
        (* every worker re-parked, no wedged Busy state: a normal task on
           the same pool must run all its chunks *)
        let acc = Atomic.make 0 in
        Pool.run pool ~chunks:8 (fun _ -> Atomic.incr acc);
        Alcotest.(check int)
          (Printf.sprintf "round %d: task after failure runs all chunks" round)
          8 (Atomic.get acc)
      done)

(* ---- Parfor on the global pool ---- *)

let test_map_reduce_merge_order () =
  for domains = 1 to 6 do
    let collected =
      Parfor.map_reduce ~domains ~n:37
        ~init:(fun () -> ref [])
        ~body:(fun acc i -> acc := i :: !acc)
        ~merge:(fun a b ->
          a := !b @ !a;
          a)
    in
    Alcotest.(check (list int))
      (Printf.sprintf "chunk-order merge at domains=%d" domains)
      (List.init 37 Fun.id) (List.rev !collected)
  done

let test_parfor_nested_degrades () =
  let total =
    Parfor.map_reduce ~domains:4 ~n:10
      ~init:(fun () -> ref 0)
      ~body:(fun acc i ->
        let inner =
          Parfor.map_reduce ~domains:4 ~n:5
            ~init:(fun () -> ref 0)
            ~body:(fun a j -> a := !a + j)
            ~merge:(fun a b ->
              a := !a + !b;
              a)
        in
        acc := !acc + (i * !inner))
      ~merge:(fun a b ->
        a := !a + !b;
        a)
  in
  Alcotest.(check int) "nested regions compute correctly" 450 !total

(* ---- trie build: bit-identical across domain counts ---- *)

let dump_trie t =
  let acc = ref [] in
  Trie.iter_tuples t (fun tup g ->
      acc :=
        (Array.to_list tup, Array.to_list g.Trie.codes, Array.to_list g.Trie.vec, g.Trie.mult)
        :: !acc);
  (List.rev !acc, Trie.cardinality t, Array.to_list t.Trie.level_max)

let gen_trie_input =
  QCheck2.Gen.(
    list_size (int_range 0 80)
      (let* k0 = int_range 0 7 in
       let* k1 = int_range 0 7 in
       let* g = int_range 0 3 in
       let* v = int_range (-5) 5 in
       return (k0, k1, g, float_of_int v)))

let qcheck_trie_differential =
  Helpers.qtest ~count:150 "trie build identical at domains=1/4" gen_trie_input (fun rows ->
      let n = List.length rows in
      let arr = Array.of_list rows in
      let col f = Array.map f arr in
      let keys2 = [| col (fun (k, _, _, _) -> k); col (fun (_, k, _, _) -> k) |] in
      let keys1 = [| col (fun (k, _, _, _) -> k) |] in
      let group_cols = [| col (fun (_, _, g, _) -> g) |] in
      let vals = col (fun (_, _, _, v) -> v) in
      let aggs = [| (( +. ), fun r -> vals.(r)) |] in
      let rows_idx = Array.init n Fun.id in
      let build ~domains keys =
        Trie.build ~domains ~keys ~rows:rows_idx ~group_cols ~aggs ()
      in
      (* two-level (parallel subtree path) and one-level (parallel leaf path) *)
      dump_trie (build ~domains:1 keys2) = dump_trie (build ~domains:4 keys2)
      && dump_trie (build ~domains:1 keys1) = dump_trie (build ~domains:4 keys1)
      && dump_trie (build ~domains:1 keys2) = dump_trie (build ~domains:3 keys2))

(* ---- CSV ingest: identical table and dictionary codes ---- *)

let test_csv_parallel_identical () =
  let path = Filename.temp_file "lh_par" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Repeated and unique strings exercise the dictionary merge; 97 rows
         do not divide evenly into 4 chunks. *)
      let rows =
        List.init 97 (fun i ->
            [
              string_of_int i;
              Printf.sprintf "cat%d" (i mod 7);
              Printf.sprintf "uniq%d" i;
              Printf.sprintf "2024-01-%02d" (1 + (i mod 28));
              Printf.sprintf "%d.25" i;
            ])
      in
      Lh_util.Csv.write_file path rows;
      let schema =
        Schema.create
          [
            ("id", Dtype.Int, Schema.Key);
            ("cat", Dtype.String, Schema.Key);
            ("uniq", Dtype.String, Schema.Annotation);
            ("d", Dtype.Date, Schema.Annotation);
            ("x", Dtype.Float, Schema.Annotation);
          ]
      in
      let load domains =
        let dict = Dict.create () in
        (* Pre-seeded strings model an engine dict shared with previously
           loaded tables: one that occurs in the file, one that does not. *)
        ignore (Dict.encode dict "cat3");
        ignore (Dict.encode dict "elsewhere");
        (Table.load_csv ~name:"t" ~schema ~dict ~domains path, dict)
      in
      let t1, d1 = load 1 in
      let t4, d4 = load 4 in
      Alcotest.(check int) "row count" 97 t4.Table.nrows;
      Alcotest.(check int) "dict sizes match" (Dict.size d1) (Dict.size d4);
      for c = 0 to Schema.ncols schema - 1 do
        match (t1.Table.cols.(c), t4.Table.cols.(c)) with
        | Table.Icol a, Table.Icol b ->
            Alcotest.(check (array int)) (Printf.sprintf "codes of column %d" c) a b
        | Table.Fcol a, Table.Fcol b ->
            Alcotest.(check (array (float 0.0))) (Printf.sprintf "floats of column %d" c) a b
        | _ -> Alcotest.failf "column %d: representation differs" c
      done;
      (* Same code assignment implies the same decoded strings, but check
         one explicitly: decoding must agree between the two dictionaries. *)
      for code = 0 to Dict.size d1 - 1 do
        if Dict.decode d1 code <> Dict.decode d4 code then
          Alcotest.failf "dict code %d: %S vs %S" code (Dict.decode d1 code) (Dict.decode d4 code)
      done)

(* ---- BLAS kernels: bit-identical across domain counts ---- *)

let test_dense_parallel_identical () =
  let st = Random.State.make [| 0x5eed |] in
  let rnd _ _ = Random.State.float st 2.0 -. 1.0 in
  (* 70 rows spans two GEMM row blocks (block = 64). *)
  let a = Dense.init ~rows:70 ~cols:33 rnd in
  let b = Dense.init ~rows:33 ~cols:65 rnd in
  let x = Array.init 33 (fun j -> rnd 0 j) in
  let c1 = Dense.gemm a b and c4 = Dense.gemm ~domains:4 a b in
  Alcotest.(check (array (float 0.0))) "gemm bit-identical" c1.Dense.data c4.Dense.data;
  Alcotest.(check (array (float 0.0))) "gemv bit-identical" (Dense.gemv a x)
    (Dense.gemv ~domains:3 a x)

let test_csr_parallel_identical () =
  let dict = Dict.create () in
  let m = Lh_datagen.Matrices.banded ~dict ~name:"pm" ~n:120 ~nnz_per_row:5 () in
  let s = Csr.of_coo m.Lh_datagen.Matrices.coo in
  let st = Random.State.make [| 0xca7 |] in
  let x = Array.init s.Csr.ncols (fun _ -> Random.State.float st 2.0 -. 1.0) in
  Alcotest.(check (array (float 0.0))) "spmv bit-identical" (Csr.spmv s x)
    (Csr.spmv ~domains:4 s x);
  let p1 = Csr.spgemm s s and p4 = Csr.spgemm ~domains:4 s s in
  Alcotest.(check (array int)) "spgemm row_ptr" p1.Csr.row_ptr p4.Csr.row_ptr;
  Alcotest.(check (array int)) "spgemm col_idx" p1.Csr.col_idx p4.Csr.col_idx;
  Alcotest.(check (array (float 0.0))) "spgemm values" p1.Csr.values p4.Csr.values

(* ---- engine level: every bench query, domains=1 vs domains=4 ---- *)

let rows_at eng ~domains sql =
  let saved = L.Engine.config eng in
  L.Engine.set_config eng { saved with L.Config.domains };
  Fun.protect
    ~finally:(fun () -> L.Engine.set_config eng saved)
    (fun () -> Helpers.engine_rows eng sql)

let test_bench_queries_differential () =
  let eng = Lazy.force Helpers.tpch_engine in
  List.iter
    (fun (name, sql) ->
      Helpers.check_rows_equal
        (Printf.sprintf "%s: domains=1 vs domains=4" name)
        (rows_at eng ~domains:1 sql) (rows_at eng ~domains:4 sql))
    (Helpers.tpch_queries @ Helpers.la_queries)

let test_oracle_at_domains_4 () =
  let eng = Lazy.force Helpers.tpch_engine in
  let saved = L.Engine.config eng in
  L.Engine.set_config eng { saved with L.Config.domains = 4 };
  Fun.protect
    ~finally:(fun () -> L.Engine.set_config eng saved)
    (fun () ->
      List.iter
        (fun sql -> Helpers.check_against_oracle eng sql)
        [ Helpers.q3; Helpers.q6; Helpers.smv; Helpers.dmv ])

(* ---- randomized chain joins with float annotations ---- *)

let gen_chain =
  QCheck2.Gen.(
    let table =
      list_size (int_range 0 25)
        (let* i = int_range 0 4 in
         let* j = int_range 0 4 in
         let* v = int_range (-3) 3 in
         return (i, j, float_of_int v))
    in
    triple table table table)

let register_matrix e name triplets =
  let rows = Array.of_list (List.map (fun (i, _, _) -> i) triplets) in
  let cols = Array.of_list (List.map (fun (_, j, _) -> j) triplets) in
  let vals = Array.of_list (List.map (fun (_, _, v) -> v) triplets) in
  L.Engine.register e
    (Table.create ~name ~schema:Lh_datagen.Matrices.matrix_schema ~dict:(L.Engine.dict e)
       [| Table.Icol rows; Table.Icol cols; Table.Fcol vals |])

let chain_sql =
  "select a.row, sum(a.v * b.v * c.v) s, count(*) n from a, b, c where a.col = b.row and b.col \
   = c.row and c.v > -2 group by a.row"

let qcheck_chain_differential =
  Helpers.qtest ~count:120 "random chain join: domains=1 vs domains=4" gen_chain
    (fun (ta, tb, tc) ->
      let e = L.Engine.create () in
      register_matrix e "a" ta;
      register_matrix e "b" tb;
      register_matrix e "c" tc;
      let seq = rows_at e ~domains:1 chain_sql in
      let par = rows_at e ~domains:4 chain_sql in
      List.length seq = List.length par
      && List.for_all2 (fun x y -> List.for_all2 Helpers.value_close x y) seq par)

(* ---- histograms under concurrency ---- *)

module Hist = Lh_obs.Hist
module Obs = Lh_obs.Obs

(* Counts and sums are lock-free fetch-and-adds, so concurrent recording
   must be exact, not approximately merged: four domains hammering one
   histogram yield bit-identical buckets/sum/max to the sequential twin. *)
let test_hist_concurrent_exact () =
  let per_domain = 5_000 in
  let value d i = float_of_int ((d * per_domain) + i + 1) *. 1e-9 in
  let h = Hist.make () in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Hist.observe_always h (value d i)
            done))
  in
  List.iter Domain.join doms;
  let par = Hist.snapshot h in
  let seq_h = Hist.make () in
  for d = 0 to 3 do
    for i = 0 to per_domain - 1 do
      Hist.observe_always seq_h (value d i)
    done
  done;
  let seq = Hist.snapshot seq_h in
  Alcotest.(check int) "count exact" (4 * per_domain) (Hist.count par);
  Alcotest.(check int) "sum matches sequential" seq.Hist.ssum_ns par.Hist.ssum_ns;
  Alcotest.(check int) "max matches sequential" seq.Hist.smax_ns par.Hist.smax_ns;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "bucket %d" i) c par.Hist.sbuckets.(i))
    seq.Hist.sbuckets

(* The query.latency histogram records exactly one observation per query
   whatever the domain count — the parallel executor must not double-count
   from worker domains. *)
let test_query_latency_count_per_domains () =
  let e = L.Engine.create () in
  L.Engine.register e
    (Table.create ~name:"m" ~schema:Lh_datagen.Matrices.matrix_schema ~dict:(L.Engine.dict e)
       [|
         Table.Icol [| 0; 1; 2; 0 |];
         Table.Icol [| 1; 2; 0; 2 |];
         Table.Fcol [| 2.0; 3.0; 4.0; 1.0 |];
       |]);
  let sql =
    "select m1.row, m2.col, sum(m1.v * m2.v) v from m m1, m m2 where m1.col = m2.row group by \
     m1.row, m2.col"
  in
  let queries_at domains n =
    let saved = L.Engine.config e in
    L.Engine.set_config e { saved with L.Config.domains };
    Fun.protect
      ~finally:(fun () -> L.Engine.set_config e saved)
      (fun () ->
        Obs.with_enabled true (fun () ->
            let h = Hist.histogram "query.latency" in
            let before = Hist.snapshot h in
            for _ = 1 to n do
              ignore (L.Engine.query e sql)
            done;
            Hist.count (Hist.diff ~before ~after:(Hist.snapshot h))))
  in
  Alcotest.(check int) "one observation per query at domains=1" 5 (queries_at 1 5);
  Alcotest.(check int) "one observation per query at domains=4" 5 (queries_at 4 5)

let () =
  Alcotest.run "levelheaded-parallel"
    [
      ( "parfor",
        [
          Alcotest.test_case "chunk_bounds partitions exhaustively" `Quick
            test_chunk_bounds_exhaustive;
          Alcotest.test_case "domain-count policy" `Quick test_domain_count_policy;
          Alcotest.test_case "merge is in chunk order" `Quick test_map_reduce_merge_order;
          Alcotest.test_case "nested map_reduce degrades safely" `Quick
            test_parfor_nested_degrades;
        ] );
      ( "pool",
        [
          Alcotest.test_case "reuse across tasks" `Quick test_pool_reuse;
          Alcotest.test_case "nested run raises Busy" `Quick test_pool_nested_busy;
          Alcotest.test_case "usable after shutdown" `Quick test_pool_shutdown_usable;
          Alcotest.test_case "chunk exception re-raised" `Quick test_pool_exception_propagates;
          Alcotest.test_case "failure skips remaining chunks" `Quick test_pool_fail_fast;
          Alcotest.test_case "reuse after repeated worker failures" `Quick
            test_pool_reuse_after_worker_failure;
        ] );
      ( "storage",
        [
          qcheck_trie_differential;
          Alcotest.test_case "parallel CSV ingest identical" `Quick test_csv_parallel_identical;
        ] );
      ( "blas",
        [
          Alcotest.test_case "dense kernels bit-identical" `Quick test_dense_parallel_identical;
          Alcotest.test_case "csr kernels bit-identical" `Quick test_csr_parallel_identical;
        ] );
      ( "engine",
        [
          Alcotest.test_case "bench queries: 1 vs 4 domains" `Quick
            test_bench_queries_differential;
          Alcotest.test_case "oracle agreement at 4 domains" `Quick test_oracle_at_domains_4;
          qcheck_chain_differential;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "concurrent recording is exact" `Quick test_hist_concurrent_exact;
          Alcotest.test_case "query.latency: one observation per query" `Quick
            test_query_latency_count_per_domains;
        ] );
    ]
