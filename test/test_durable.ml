(* Durable-ingest tests: the WAL record codec (property round-trip plus
   an adversarial corruption corpus), checkpoint files, and the store's
   recovery state machine. The process-level counterpart — SIGKILL at
   fault-selected points against a real lhserve — lives in
   Lh_qgen.Crashtest.run_kill (lhfuzz --kill-restart). *)

module Wal = Lh_durable.Wal
module Checkpoint = Lh_durable.Checkpoint
module Store = Lh_durable.Store
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype
module Fault = Lh_fault.Fault

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_temp_dir f =
  let dir = Filename.temp_file "lh_durable_test" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let schema =
  Schema.create
    [
      ("k", Dtype.Int, Schema.Key);
      ("s", Dtype.String, Schema.Key);
      ("v", Dtype.Float, Schema.Annotation);
      ("d", Dtype.Date, Schema.Annotation);
    ]

let rows g =
  List.init (3 + (g mod 3)) (fun i ->
      [
        Dtype.VInt (i * (g + 1));
        Dtype.VString (Printf.sprintf "s%d_%d" g i);
        Dtype.VFloat (float_of_int ((i + 1) * (g + 2)) *. 0.5);
        Dtype.VDate ((g * 31) + i);
      ])

let batch ?(name = "t") g = { Wal.b_seq = g + 1; b_name = name; b_schema = schema; b_rows = rows g }

(* ---- codec: property round-trip ---- *)

let gen_batch =
  let open QCheck2.Gen in
  let value =
    oneof
      [
        map (fun i -> Dtype.VInt i) (int_range (-1_000_000) 1_000_000);
        map (fun f -> Dtype.VFloat f) (float_bound_inclusive 1e9);
        map (fun s -> Dtype.VString s) (string_size ~gen:printable (int_range 0 12));
        map (fun d -> Dtype.VDate d) (int_range 0 40_000);
      ]
  in
  let* ncols = int_range 1 4 in
  let* dtypes = list_repeat ncols (oneofl [ Dtype.Int; Dtype.Float; Dtype.String; Dtype.Date ]) in
  let coerce dt v =
    (* keep values type-consistent with the column so decode round-trips *)
    match (dt, v) with
    | Dtype.Int, _ -> Dtype.VInt (Hashtbl.hash v mod 100_000)
    | Dtype.Float, Dtype.VFloat f -> Dtype.VFloat f
    | Dtype.Float, _ -> Dtype.VFloat (float_of_int (Hashtbl.hash v mod 1000) *. 0.25)
    | Dtype.String, Dtype.VString s -> Dtype.VString s
    | Dtype.String, _ -> Dtype.VString (string_of_int (Hashtbl.hash v mod 1000))
    | Dtype.Date, _ -> Dtype.VDate (Hashtbl.hash v mod 40_000)
  in
  let* nrows = int_range 0 12 in
  let* raw = list_repeat nrows (list_repeat ncols value) in
  let* seq = int_range 0 1_000_000 in
  let* name = string_size ~gen:(char_range 'a' 'z') (int_range 1 10) in
  let sch =
    Schema.create
      (List.mapi
         (fun i dt ->
           (Printf.sprintf "c%d" i, dt, if i = 0 && dt <> Dtype.Float then Schema.Key else Schema.Annotation))
         dtypes)
  in
  let rows = List.map (List.mapi (fun i v -> coerce (List.nth dtypes i) v)) raw in
  return { Wal.b_seq = seq; b_name = name; b_schema = sch; b_rows = rows }

let schema_eq a b =
  Schema.ncols a = Schema.ncols b
  && List.for_all (fun i -> Schema.col a i = Schema.col b i)
       (List.init (Schema.ncols a) Fun.id)

let qcheck_codec_roundtrip =
  Helpers.qtest ~count:300 "wal payload round-trip" gen_batch (fun b ->
      match Wal.decode_payload (Wal.encode_payload b) with
      | Ok b' ->
          b'.Wal.b_seq = b.Wal.b_seq
          && b'.Wal.b_name = b.Wal.b_name
          && schema_eq b'.Wal.b_schema b.Wal.b_schema
          && b'.Wal.b_rows = b.Wal.b_rows
      | Error _ -> false)

(* ---- writer/replay basics ---- *)

let test_append_replay () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create ~path ~sync:Wal.Never in
      List.iter (fun g -> Wal.append w (batch g)) [ 0; 1; 2 ];
      Wal.close w;
      let r = Wal.replay path in
      Alcotest.(check int) "batches" 3 (List.length r.Wal.r_batches);
      Alcotest.(check bool) "torn" false r.Wal.r_torn;
      Alcotest.(check bool) "content" true (List.map (fun g -> batch g) [ 0; 1; 2 ] = r.Wal.r_batches);
      (* resume appending at the replayed offset *)
      let w = Wal.open_at ~path ~sync:Wal.Never ~valid_len:r.Wal.r_valid_len in
      Wal.append w (batch 3);
      Wal.close w;
      let r = Wal.replay path in
      Alcotest.(check int) "after resume" 4 (List.length r.Wal.r_batches))

let test_missing_file_replays_empty () =
  with_temp_dir (fun dir ->
      let r = Wal.replay (Filename.concat dir "nope.log") in
      Alcotest.(check int) "no batches" 0 (List.length r.Wal.r_batches);
      Alcotest.(check bool) "not torn" false r.Wal.r_torn;
      Alcotest.(check int) "header only" Wal.header_len r.Wal.r_valid_len)

(* ---- adversarial corpus ---- *)

(* Truncated final record: replay keeps the good prefix, reports the torn
   tail, and open_at truncates it so the log is clean again. *)
let test_truncated_record () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create ~path ~sync:Wal.Never in
      Wal.append w (batch 0);
      Wal.append w (batch 1);
      Wal.append_torn w (batch 2) ~keep:7;
      Wal.close w;
      let r = Wal.replay path in
      Alcotest.(check int) "good prefix" 2 (List.length r.Wal.r_batches);
      Alcotest.(check bool) "torn tail" true r.Wal.r_torn;
      let w = Wal.open_at ~path ~sync:Wal.Never ~valid_len:r.Wal.r_valid_len in
      Wal.append w (batch 2);
      Wal.close w;
      let r = Wal.replay path in
      Alcotest.(check int) "healed" 3 (List.length r.Wal.r_batches);
      Alcotest.(check bool) "no longer torn" false r.Wal.r_torn)

(* A flipped byte inside a record's payload fails the CRC: replay stops
   there, keeping everything before it. *)
let test_flipped_checksum_byte () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create ~path ~sync:Wal.Never in
      Wal.append w (batch 0);
      let off_before_b1 = Wal.tell w in
      Wal.append w (batch 1);
      Wal.close w;
      Wal.corrupt_byte ~path ~off:(off_before_b1 + Wal.frame_header_len + 3);
      let r = Wal.replay path in
      Alcotest.(check int) "stops at corruption" 1 (List.length r.Wal.r_batches);
      Alcotest.(check bool) "torn" true r.Wal.r_torn;
      Alcotest.(check int) "valid_len is last good frame" off_before_b1 r.Wal.r_valid_len)

(* A zero-filled tail (preallocated blocks after a crash) parses as a
   zero-length frame: replay must stop, not loop or allocate. *)
let test_zero_length_tail () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create ~path ~sync:Wal.Never in
      Wal.append w (batch 0);
      Wal.close w;
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
      let zeros = Bytes.make 64 '\000' in
      ignore (Unix.write fd zeros 0 (Bytes.length zeros));
      Unix.close fd;
      let r = Wal.replay path in
      Alcotest.(check int) "good prefix" 1 (List.length r.Wal.r_batches);
      Alcotest.(check bool) "torn" true r.Wal.r_torn)

(* A corrupt magic header invalidates the whole file. *)
let test_bad_magic () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create ~path ~sync:Wal.Never in
      Wal.append w (batch 0);
      Wal.close w;
      Wal.corrupt_byte ~path ~off:0;
      let r = Wal.replay path in
      Alcotest.(check int) "nothing replayed" 0 (List.length r.Wal.r_batches);
      Alcotest.(check bool) "torn" true r.Wal.r_torn)

(* Duplicate sequence numbers (a retried batch whose failed first
   attempt nevertheless reached the disk) are deduplicated by the store
   on replay; the LAST occurrence — the acknowledged retry — wins. *)
let test_duplicate_seq_last_wins () =
  with_temp_dir (fun dir ->
      let store, _ = Store.open_dir ~sync:Wal.Never dir in
      ignore (Store.log_batch store ~name:"t" ~schema (rows 0));
      ignore (Store.log_batch store ~name:"t" ~schema (rows 1));
      Store.close store;
      (* forge a duplicate of seq 2 at the tail — the "retry" *)
      let r = Wal.replay (Store.wal_path store) in
      let w =
        Wal.open_at ~path:(Store.wal_path store) ~sync:Wal.Never ~valid_len:r.Wal.r_valid_len
      in
      Wal.append w { Wal.b_seq = 2; b_name = "t"; b_schema = schema; b_rows = rows 2 };
      Wal.close w;
      let store, recovered = Store.open_dir ~sync:Wal.Never dir in
      Store.close store;
      Alcotest.(check int) "duplicate deduplicated" 2
        (List.length recovered.Store.rc_batches);
      Alcotest.(check bool) "kept the last seq-2 payload" true
        ((List.nth recovered.Store.rc_batches 1).Wal.b_rows = rows 2);
      Alcotest.(check int) "seq" 2 recovered.Store.rc_seq)

(* A failed sync point must remove the already-written frame: the caller
   rolls its sequence counter back and the retry reuses the number, so a
   surviving first frame would shadow the acknowledged retry on replay. *)
let test_fsync_failure_removes_frame () =
  with_temp_dir (fun dir ->
      let store, _ = Store.open_dir ~sync:Wal.Always dir in
      ignore (Store.log_batch store ~name:"t" ~schema (rows 0));
      Fault.arm ~trigger:(Fault.Nth 1) "wal.fsync";
      (match Store.log_batch store ~name:"t" ~schema (rows 1) with
      | exception Fault.Injected _ -> ()
      | _ -> Alcotest.fail "expected the armed wal.fsync site to fire");
      Fault.disarm_all ();
      (* the failed frame is gone from the log, so the retried sequence
         number carries only the acknowledged content *)
      Alcotest.(check int) "retry reuses the sequence" 2
        (Store.log_batch store ~name:"t" ~schema (rows 2));
      Store.close store;
      let store, recovered = Store.open_dir ~sync:Wal.Never dir in
      Store.close store;
      Alcotest.(check int) "two batches recovered" 2 (List.length recovered.Store.rc_batches);
      Alcotest.(check bool) "seq 2 is the acknowledged retry" true
        ((List.nth recovered.Store.rc_batches 1).Wal.b_rows = rows 2);
      Alcotest.(check int) "seq" 2 recovered.Store.rc_seq)

(* A full-length garbage header must be rewritten on open, not appended
   after — otherwise every batch acknowledged afterwards is invisible to
   the next boot's replay. *)
let test_garbage_header_rewritten () =
  with_temp_dir (fun dir ->
      let store, _ = Store.open_dir ~sync:Wal.Never dir in
      ignore (Store.log_batch store ~name:"t" ~schema (rows 0));
      Store.close store;
      Wal.corrupt_byte ~path:(Store.wal_path store) ~off:0;
      (* boot 1: header unrecognizable → recover nothing, rewrite log *)
      let store, recovered = Store.open_dir ~sync:Wal.Never dir in
      Alcotest.(check int) "nothing recovered" 0 (List.length recovered.Store.rc_batches);
      Alcotest.(check bool) "reported torn" true recovered.Store.rc_torn;
      ignore (Store.log_batch store ~name:"t" ~schema (rows 1));
      Store.close store;
      (* boot 2: the batch appended after the rewrite must be recoverable *)
      let store, recovered = Store.open_dir ~sync:Wal.Never dir in
      Store.close store;
      Alcotest.(check int) "batch after rewrite recovered" 1
        (List.length recovered.Store.rc_batches);
      Alcotest.(check bool) "content" true
        ((List.hd recovered.Store.rc_batches).Wal.b_rows = rows 1))

(* A corrupt MANIFEST alone must not discard the durable state it
   indexed: recovery falls back to the newest loadable checkpoint plus a
   full WAL replay, and heals the manifest. *)
let test_corrupt_manifest_falls_back () =
  with_temp_dir (fun dir ->
      let store, _ = Store.open_dir ~sync:Wal.Never dir in
      ignore (Store.log_batch store ~name:"a" ~schema (rows 0));
      Store.checkpoint store [ ("a", schema, rows 0) ];
      ignore (Store.log_batch store ~name:"b" ~schema (rows 1));
      Store.close store;
      let oc = open_out_bin (Filename.concat dir "MANIFEST") in
      output_string oc "GARBAGE\nnot a manifest\n";
      close_out oc;
      let store, recovered = Store.open_dir ~sync:Wal.Never dir in
      Alcotest.(check int) "checkpoint found via scan" 1
        (List.length recovered.Store.rc_tables);
      Alcotest.(check int) "wal suffix" 1 (List.length recovered.Store.rc_batches);
      Alcotest.(check int) "seq" 2 recovered.Store.rc_seq;
      ignore (Store.log_batch store ~name:"c" ~schema (rows 2));
      Store.close store;
      (* the manifest was healed: the next boot takes the normal path *)
      let store, recovered = Store.open_dir ~sync:Wal.Never dir in
      Store.close store;
      Alcotest.(check int) "post-heal checkpoint tables" 1
        (List.length recovered.Store.rc_tables);
      Alcotest.(check int) "post-heal seq" 3 recovered.Store.rc_seq)

(* ---- store recovery ---- *)

let test_store_reopen () =
  with_temp_dir (fun dir ->
      let store, recovered = Store.open_dir ~sync:Wal.Never dir in
      Alcotest.(check int) "fresh" 0 recovered.Store.rc_seq;
      ignore (Store.log_batch store ~name:"a" ~schema (rows 0));
      ignore (Store.log_batch store ~name:"b" ~schema (rows 1));
      ignore (Store.log_batch store ~name:"a" ~schema (rows 2));
      Store.close store;
      let store, recovered = Store.open_dir ~sync:Wal.Never dir in
      Alcotest.(check int) "seq" 3 recovered.Store.rc_seq;
      Alcotest.(check int) "batches" 3 (List.length recovered.Store.rc_batches);
      (* whole-table replacement semantics: replay lands on the last
         batch per table *)
      let tbl = Hashtbl.create 4 in
      Store.replay_into recovered (fun ~name ~schema:_ rows -> Hashtbl.replace tbl name rows);
      Alcotest.(check bool) "a = rows 2" true (Hashtbl.find tbl "a" = rows 2);
      Alcotest.(check bool) "b = rows 1" true (Hashtbl.find tbl "b" = rows 1);
      (* sequence numbers continue past recovery *)
      Alcotest.(check int) "next seq" 4 (Store.log_batch store ~name:"c" ~schema (rows 0));
      Store.close store)

let test_checkpoint_and_suffix () =
  with_temp_dir (fun dir ->
      let store, _ = Store.open_dir ~sync:Wal.Never dir in
      ignore (Store.log_batch store ~name:"a" ~schema (rows 0));
      ignore (Store.log_batch store ~name:"b" ~schema (rows 1));
      Store.checkpoint store [ ("a", schema, rows 0); ("b", schema, rows 1) ];
      ignore (Store.log_batch store ~name:"a" ~schema (rows 2));
      Store.close store;
      let store, recovered = Store.open_dir ~sync:Wal.Never dir in
      Store.close store;
      Alcotest.(check int) "checkpoint tables" 2 (List.length recovered.Store.rc_tables);
      Alcotest.(check int) "wal suffix" 1 (List.length recovered.Store.rc_batches);
      Alcotest.(check int) "checkpoint seq" 2 recovered.Store.rc_checkpoint_seq;
      Alcotest.(check int) "seq" 3 recovered.Store.rc_seq;
      let tbl = Hashtbl.create 4 in
      Store.replay_into recovered (fun ~name ~schema:_ rows -> Hashtbl.replace tbl name rows);
      Alcotest.(check bool) "a overridden by suffix" true (Hashtbl.find tbl "a" = rows 2);
      Alcotest.(check bool) "b from checkpoint" true (Hashtbl.find tbl "b" = rows 1))

(* A truncated (torn) checkpoint file is skipped; recovery falls back to
   the WAL. *)
let test_corrupt_checkpoint_skipped () =
  with_temp_dir (fun dir ->
      let store, _ = Store.open_dir ~sync:Wal.Never dir in
      ignore (Store.log_batch store ~name:"a" ~schema (rows 0));
      Store.checkpoint store [ ("a", schema, rows 0) ];
      ignore (Store.log_batch store ~name:"a" ~schema (rows 1));
      Store.close store;
      let ckpt = Filename.concat dir (Checkpoint.filename ~seq:1) in
      Checkpoint.truncate_file ~path:ckpt ~len:20;
      let store, recovered = Store.open_dir ~sync:Wal.Never dir in
      Store.close store;
      Alcotest.(check int) "no checkpoint tables" 0 (List.length recovered.Store.rc_tables);
      (* the post-checkpoint WAL only holds the suffix: seq 2 *)
      Alcotest.(check int) "wal suffix" 1 (List.length recovered.Store.rc_batches);
      Alcotest.(check int) "seq" 2 recovered.Store.rc_seq)

(* %012d pads but does not cap: scan must keep recognizing checkpoints
   once the sequence outgrows 12 digits. *)
let test_checkpoint_filename_width () =
  let check_opt what exp got = Alcotest.(check (option int)) what exp got in
  check_opt "normal" (Some 7) (Checkpoint.seq_of_filename "ckpt-000000000007.lhc");
  check_opt "13 digits" (Some 1_000_000_000_000)
    (Checkpoint.seq_of_filename "ckpt-1000000000000.lhc");
  check_opt "filename round-trips past 12 digits" (Some 1_000_000_000_000)
    (Checkpoint.seq_of_filename (Checkpoint.filename ~seq:1_000_000_000_000));
  check_opt "tmp rejected" None (Checkpoint.seq_of_filename "ckpt-000000000001.lhc.tmp");
  check_opt "non-digits rejected" None (Checkpoint.seq_of_filename "ckpt-00000000000x.lhc");
  check_opt "empty digits rejected" None (Checkpoint.seq_of_filename "ckpt-.lhc")

let test_sync_of_string () =
  Alcotest.(check bool) "always" true (Wal.sync_of_string "always" = Ok Wal.Always);
  Alcotest.(check bool) "group" true (Wal.sync_of_string "group" = Ok (Wal.Group 8));
  Alcotest.(check bool) "group:3" true (Wal.sync_of_string "group:3" = Ok (Wal.Group 3));
  Alcotest.(check bool) "none" true (Wal.sync_of_string "none" = Ok Wal.Never);
  Alcotest.(check bool) "junk rejected" true (Result.is_error (Wal.sync_of_string "sometimes"));
  Alcotest.(check bool) "group:0 rejected" true (Result.is_error (Wal.sync_of_string "group:0"))

let () =
  Alcotest.run "lh_durable"
    [
      ("codec", [ qcheck_codec_roundtrip ]);
      ( "wal",
        [
          Alcotest.test_case "append/replay" `Quick test_append_replay;
          Alcotest.test_case "missing file" `Quick test_missing_file_replays_empty;
          Alcotest.test_case "sync modes" `Quick test_sync_of_string;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "truncated record" `Quick test_truncated_record;
          Alcotest.test_case "flipped checksum byte" `Quick test_flipped_checksum_byte;
          Alcotest.test_case "zero-length tail" `Quick test_zero_length_tail;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "duplicate seq: last wins" `Quick test_duplicate_seq_last_wins;
          Alcotest.test_case "fsync failure removes frame" `Quick
            test_fsync_failure_removes_frame;
          Alcotest.test_case "garbage header rewritten" `Quick test_garbage_header_rewritten;
        ] );
      ( "store",
        [
          Alcotest.test_case "reopen" `Quick test_store_reopen;
          Alcotest.test_case "checkpoint + wal suffix" `Quick test_checkpoint_and_suffix;
          Alcotest.test_case "corrupt checkpoint skipped" `Quick test_corrupt_checkpoint_skipped;
          Alcotest.test_case "corrupt manifest falls back" `Quick
            test_corrupt_manifest_falls_back;
          Alcotest.test_case "checkpoint filename width" `Quick test_checkpoint_filename_width;
        ] );
    ]
