(* The serving layer: epoch-pinned snapshot reads racing ingest,
   admission control, epoch lifecycle, and the qcheck interleaving
   property (no query observes rows from two epochs; pinned epochs are
   never reclaimed; the generation counter is monotone). *)

module Engine = Levelheaded.Engine
module Config = Levelheaded.Config
module Serve = Lh_serve.Serve
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype
module Table = Lh_storage.Table
module Pool = Lh_util.Pool

let schema = Schema.create [ ("k", Dtype.Int, Schema.Key); ("v", Dtype.Float, Schema.Annotation) ]

(* Deterministic table contents for generation [g]: both the row count
   and every annotation depend on [g], so any mix of two generations in
   one result is detectable from the sum alone. *)
let rows g =
  List.init (5 + g) (fun i -> [ Dtype.VInt i; Dtype.VFloat (float_of_int ((i + 1) * (g + 1))) ])

let expected_sum g =
  List.fold_left
    (fun acc row -> match row with [ _; Dtype.VFloat v ] -> acc +. v | _ -> acc)
    0.0 (rows g)

let fresh_service ?max_sessions ?queue_depth ?session_depth () =
  let eng = Engine.create ~config:{ Config.default with Config.domains = 1 } () in
  ignore (Engine.register_rows eng ~name:"t" ~schema (rows 0));
  let svc = Serve.create ?max_sessions ?queue_depth ?session_depth eng in
  (eng, svc)

let sum_of = function
  | Ok (table, _) -> (
      match Table.to_rows table with
      | [ [ Dtype.VFloat s ] ] -> s
      | r -> Alcotest.failf "unexpected result shape: %d rows" (List.length r))
  | Error e -> Alcotest.failf "query failed: %s" (Serve.error_to_string e)

let q_sum = "select sum(v) as s from t"

let check_sum name g result = Alcotest.(check (float 1e-9)) name (expected_sum g) (sum_of result)

(* ---- snapshot isolation ---- *)

let test_pinned_reads () =
  let _, svc = fresh_service () in
  let s = Serve.open_session svc in
  let e0 = Serve.pin s in
  check_sum "g0 before ingest" 0 (Serve.query_epoch s q_sum);
  (match Serve.ingest_rows svc ~name:"t" ~schema (rows 1) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ingest: %s" (Serve.error_to_string e));
  (* the pinned session still reads generation 0 … *)
  (match Serve.query_epoch s q_sum with
  | Ok (_, e) as r ->
      Alcotest.(check int) "pinned epoch id" e0 e;
      check_sum "g0 after ingest (pinned)" 0 r
  | Error e -> Alcotest.failf "pinned query: %s" (Serve.error_to_string e));
  (* … an unpinned session reads generation 1 *)
  let s2 = Serve.open_session svc in
  check_sum "g1 fresh session" 1 (Serve.query_epoch s2 q_sum);
  Alcotest.(check bool) "current moved on" true (Serve.current_epoch svc > e0);
  Serve.close_session s2;
  Serve.close_session s;
  Serve.close svc

let test_epoch_retire () =
  let _, svc = fresh_service () in
  let s = Serve.open_session svc in
  let e0 = Serve.pin s in
  ignore (Result.get_ok (Serve.ingest_rows svc ~name:"t" ~schema (rows 1)));
  (* superseded but pinned: still live *)
  let live = Serve.epochs svc in
  Alcotest.(check bool) "pinned epoch live" true (List.exists (fun (id, _, _) -> id = e0) live);
  Alcotest.(check int) "two live epochs" 2 (List.length live);
  Serve.unpin s;
  let live = Serve.epochs svc in
  Alcotest.(check bool) "reclaimed after unpin" false
    (List.exists (fun (id, _, _) -> id = e0) live);
  Alcotest.(check int) "one live epoch" 1 (List.length live);
  Serve.close svc

let test_ingest_error_keeps_epoch () =
  let _, svc = fresh_service () in
  let before = Serve.current_epoch svc in
  (* ragged row: the writer rejects it install-on-success *)
  (match Serve.ingest_rows svc ~name:"t" ~schema [ [ Dtype.VInt 1 ] ] with
  | Ok _ -> Alcotest.fail "ragged ingest should fail"
  | Error (Serve.Engine_error _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Serve.error_to_string e));
  Alcotest.(check int) "epoch unchanged" before (Serve.current_epoch svc);
  let s = Serve.open_session svc in
  check_sum "old generation still served" 0 (Serve.query_epoch s q_sum);
  Serve.close svc

(* ---- admission control ---- *)

let test_session_cap () =
  let _, svc = fresh_service ~max_sessions:2 () in
  let _s1 = Serve.open_session svc in
  let s2 = Serve.open_session svc in
  (match Serve.open_session svc with
  | (_ : Serve.session) -> Alcotest.fail "third session should be rejected"
  | exception Serve.Error (Serve.Overloaded _) -> ());
  Serve.close_session s2;
  let (_ : Serve.session) = Serve.open_session svc in
  Serve.close svc

let test_queue_depth () =
  let _, svc = fresh_service ~queue_depth:1 ~session_depth:8 () in
  (* no pool workers are guaranteed here, so occupy the only admission
     slot via a second session's in-flight state: simplest determinstic
     probe is the session_depth variant below; here just check that a
     closed service rejects. *)
  Serve.close svc;
  let eng = Engine.create () in
  ignore (Engine.register_rows eng ~name:"t" ~schema (rows 0));
  let svc2 = Serve.create ~queue_depth:4 eng in
  let s = Serve.open_session svc2 in
  check_sum "works before close" 0 (Serve.query_epoch s q_sum);
  Serve.close svc2;
  match Serve.query s q_sum with
  | Ok _ -> Alcotest.fail "query after close should fail"
  | Error (Serve.Closed _) -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Serve.error_to_string e)

let test_session_depth_rejects () =
  let _, svc = fresh_service ~session_depth:1 () in
  let s = Serve.open_session svc in
  (* admission is taken at submit time: with one slot, a second submit
     before the first is awaited must be rejected when no worker has
     drained the first yet — with zero workers, submit runs
     synchronously, so both succeed. Either way the typed surface holds:
     every outcome is Ok or Overloaded, never an exception. *)
  let t1 = Serve.submit s q_sum in
  let t2 = Serve.submit s q_sum in
  let ok_or_overloaded tk =
    match Serve.await tk with
    | Ok _ -> true
    | Error (Serve.Overloaded _) -> true
    | Error e -> Alcotest.failf "unexpected: %s" (Serve.error_to_string e)
  in
  Alcotest.(check bool) "t1" true (ok_or_overloaded t1);
  Alcotest.(check bool) "t2" true (ok_or_overloaded t2);
  Serve.close svc

(* ---- prepared statements across epochs ---- *)

let test_prepared_revalidates () =
  let _, svc = fresh_service () in
  let s = Serve.open_session svc in
  let p = Result.get_ok (Serve.prepare s "select sum(v) as s from t where k >= $1") in
  let exec g =
    match Serve.exec_prepared p [ Dtype.VInt 0 ] with
    | Ok (table, _) as r ->
        ignore table;
        check_sum (Printf.sprintf "prepared g%d" g) g r
    | Error e -> Alcotest.failf "exec: %s" (Serve.error_to_string e)
  in
  exec 0;
  ignore (Result.get_ok (Serve.ingest_rows svc ~name:"t" ~schema (rows 1)));
  (* the statement transparently re-plans against the new epoch *)
  exec 1;
  Serve.close svc

(* ---- async submission over the pool job lane ---- *)

let test_submit_await () =
  Pool.ensure_workers (Pool.global ()) 2;
  let _, svc = fresh_service () in
  let s1 = Serve.open_session svc in
  let s2 = Serve.open_session svc in
  let tickets = List.init 8 (fun i -> Serve.submit (if i mod 2 = 0 then s1 else s2) q_sum) in
  List.iter (fun tk -> check_sum "async sum" 0 (Serve.await tk)) tickets;
  Serve.close svc

(* A real race: one domain queries in a loop while this domain ingests
   new generations. Every result must match exactly one generation's
   expectation — never a blend. *)
let test_concurrent_reader_vs_ingest () =
  Pool.ensure_workers (Pool.global ()) 2;
  let _, svc = fresh_service () in
  let gens = 6 in
  let reader =
    Domain.spawn (fun () ->
        let s = Serve.open_session svc in
        let sums = ref [] in
        for _ = 1 to 40 do
          match Serve.query_epoch s q_sum with
          | Ok (table, _) -> (
              match Table.to_rows table with
              | [ [ Dtype.VFloat v ] ] -> sums := v :: !sums
              | _ -> ())
          | Error e -> Alcotest.failf "reader: %s" (Serve.error_to_string e)
        done;
        Serve.close_session s;
        !sums)
  in
  for g = 1 to gens - 1 do
    match Serve.ingest_rows svc ~name:"t" ~schema (rows g) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "ingest g%d: %s" g (Serve.error_to_string e)
  done;
  let sums = Domain.join reader in
  let valid = List.init gens expected_sum in
  List.iter
    (fun s ->
      if not (List.exists (fun v -> Float.abs (v -. s) < 1e-9) valid) then
        Alcotest.failf "sum %g matches no single generation" s)
    sums;
  (* all retired epochs were reclaimed once the reader closed *)
  Alcotest.(check int) "live epochs" 1 (List.length (Serve.epochs svc));
  Serve.close svc

(* ---- qcheck: random interleavings ---- *)

type op = Query of int | Ingest | Pin of int | Unpin of int

let op_gen nsessions =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Query i) (int_range 0 (nsessions - 1));
        return Ingest;
        map (fun i -> Pin i) (int_range 0 (nsessions - 1));
        map (fun i -> Unpin i) (int_range 0 (nsessions - 1));
      ])

let qcheck_interleavings =
  let nsessions = 3 in
  Helpers.qtest ~count:60 "serve interleavings hold the epoch invariants"
    QCheck2.Gen.(list_size (int_range 1 40) (op_gen nsessions))
    (fun ops ->
      let _, svc = fresh_service () in
      let sessions = Array.init nsessions (fun _ -> Serve.open_session svc) in
      (* epoch id -> generation, filled as ingest publishes *)
      let gen_of = Hashtbl.create 8 in
      Hashtbl.replace gen_of (Serve.current_epoch svc) 0;
      let gen = ref 0 in
      let last_current = ref (Serve.current_epoch svc) in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun op ->
          (match op with
          | Query i -> (
              match Serve.query_epoch sessions.(i) q_sum with
              | Ok (table, eid) -> (
                  (* the result must be exactly the generation of the
                     epoch the query pinned — one epoch, not a blend *)
                  match (Table.to_rows table, Hashtbl.find_opt gen_of eid) with
                  | [ [ Dtype.VFloat v ] ], Some g ->
                      check (Float.abs (v -. expected_sum g) < 1e-9)
                  | _ -> check false)
              | Error _ -> check false)
          | Ingest -> (
              match Serve.ingest_rows svc ~name:"t" ~schema (rows (!gen + 1)) with
              | Ok eid ->
                  incr gen;
                  Hashtbl.replace gen_of eid !gen
              | Error _ -> check false)
          | Pin i -> ignore (Serve.pin sessions.(i))
          | Unpin i -> Serve.unpin sessions.(i));
          (* generation counter monotone *)
          let cur = Serve.current_epoch svc in
          check (cur >= !last_current);
          last_current := cur;
          (* pinned epochs never reclaimed *)
          let live = Serve.epochs svc in
          Array.iter
            (fun s ->
              match Serve.pinned_epoch s with
              | Some id -> check (List.exists (fun (eid, _, _) -> eid = id) live)
              | None -> ())
            sessions;
          (* the current epoch is always live and unretired *)
          check (List.exists (fun (eid, _, retired) -> eid = cur && not retired) live))
        ops;
      Serve.close svc;
      !ok)

(* ---- pool job lane ---- *)

let test_pool_submit_fairness () =
  let pool = Pool.create ~workers:1 in
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let order = ref [] in
  let done_ = ref 0 in
  let gate_started = ref false in
  let gate_open = ref false in
  let njobs = 9 in
  (* Park the single worker on a gate job so all nine jobs are enqueued
     before any is serviced; the drain order is then deterministic. *)
  Pool.submit pool ~group:99 (fun () ->
      Mutex.lock lock;
      gate_started := true;
      Condition.broadcast cond;
      while not !gate_open do
        Condition.wait cond lock
      done;
      Mutex.unlock lock);
  Mutex.lock lock;
  while not !gate_started do
    Condition.wait cond lock
  done;
  (* three groups, three jobs each, whole groups in sequence: a FIFO
     would drain group 0 first; round-robin must interleave 0,1,2,… *)
  for g = 0 to 2 do
    for k = 0 to 2 do
      Pool.submit pool ~group:g (fun () ->
          Mutex.lock lock;
          order := (g, k) :: !order;
          incr done_;
          Condition.broadcast cond;
          Mutex.unlock lock)
    done
  done;
  gate_open := true;
  Condition.broadcast cond;
  while !done_ < njobs do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  let got = List.rev !order in
  let expect = [ (0, 0); (1, 0); (2, 0); (0, 1); (1, 1); (2, 1); (0, 2); (1, 2); (2, 2) ] in
  Alcotest.(check (list (pair int int))) "round-robin drain order" expect got;
  Pool.shutdown pool

let test_pool_submit_sync_when_no_workers () =
  let pool = Pool.create ~workers:0 in
  let ran = ref false in
  Pool.submit pool ~group:0 (fun () -> ran := true);
  Alcotest.(check bool) "ran synchronously" true !ran;
  Pool.shutdown pool;
  let ran2 = ref false in
  Pool.submit pool ~group:1 (fun () -> ran2 := true);
  Alcotest.(check bool) "ran after shutdown" true !ran2

let () =
  Alcotest.run "lh_serve"
    [
      ( "snapshot",
        [
          Alcotest.test_case "pinned reads survive ingest" `Quick test_pinned_reads;
          Alcotest.test_case "retire on unpin" `Quick test_epoch_retire;
          Alcotest.test_case "failed ingest keeps epoch" `Quick test_ingest_error_keeps_epoch;
        ] );
      ( "admission",
        [
          Alcotest.test_case "session cap" `Quick test_session_cap;
          Alcotest.test_case "closed service rejects" `Quick test_queue_depth;
          Alcotest.test_case "session depth typed rejection" `Quick test_session_depth_rejects;
        ] );
      ( "prepared",
        [ Alcotest.test_case "revalidates across epochs" `Quick test_prepared_revalidates ] );
      ( "concurrent",
        [
          Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "reader races ingest" `Quick test_concurrent_reader_vs_ingest;
        ] );
      ("interleavings", [ qcheck_interleavings ]);
      ( "pool-jobs",
        [
          Alcotest.test_case "group round-robin" `Quick test_pool_submit_fairness;
          Alcotest.test_case "sync fallback" `Quick test_pool_submit_sync_when_no_workers;
        ] );
    ]
